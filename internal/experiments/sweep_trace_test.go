package experiments

import (
	"bytes"
	"testing"

	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/trace"
)

// assertTraceValidates round-trips events through the JSONL exporter and its
// schema validator.
func assertTraceValidates(t *testing.T, events []trace.Event) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if n, err := trace.ValidateJSONL(&buf); err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	} else if n != len(events) {
		t.Fatalf("ValidateJSONL counted %d events, wrote %d", n, len(events))
	}
}

// TestRunSweepTracesFirstFailures checks the opt-in per-mutant tracing: a
// serial sweep with TraceFailures: 2 records exactly two sweep.mutant spans,
// each wrapping a full diagnosis of a detected mutant, and the trace passes
// the exporter's schema validation.
func TestRunSweepTracesFirstFailures(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()

	tr := trace.New()
	res, err := RunSweepOpts(spec, suite, SweepOptions{
		Workers:       1,
		Trace:         tr,
		TraceFailures: 2,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Detected < 2 {
		t.Fatalf("sweep detected %d mutants, need at least 2 for this test", res.Detected)
	}
	events := tr.Events()
	if got := trace.CountKind(events, trace.KindSweepMutant, trace.PhaseBegin); got != 2 {
		t.Fatalf("sweep.mutant begin spans = %d, want 2", got)
	}
	if got := trace.CountKind(events, trace.KindSweepMutant, trace.PhaseEnd); got != 2 {
		t.Fatalf("sweep.mutant end spans = %d, want 2", got)
	}
	// Every traced mutant's diagnosis recorded its analysis and verdict.
	if got := trace.CountKind(events, trace.KindAnalyze, trace.PhaseBegin); got != 2 {
		t.Fatalf("analyze spans = %d, want 2", got)
	}
	if got := trace.CountKind(events, trace.KindVerdict, ""); got != 2 {
		t.Fatalf("localize.verdict events = %d, want 2", got)
	}
	for _, e := range events {
		if e.Kind == trace.KindSweepMutant && e.Phase == trace.PhaseBegin {
			if e.Attrs["fault"] == "" || e.Attrs["outcome"] == "" {
				t.Fatalf("sweep.mutant span lacks fault/outcome attrs: %+v", e)
			}
		}
	}
	assertTraceValidates(t, events)
}

// TestRunSweepSharedTracerParallel drives a parallel sweep with a shared
// tracer and a budget larger than the worker count, so several workers trace
// concurrently into the same ring. Run under -race this is the data-race
// check for the tracer in its noisiest real consumer; functionally it checks
// the budget is honored exactly despite concurrent decrements.
func TestRunSweepSharedTracerParallel(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()

	const budget = 4
	tr := trace.New()
	res, err := RunSweepOpts(spec, suite, SweepOptions{
		Workers:       8,
		Trace:         tr,
		TraceFailures: budget,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Detected < budget {
		t.Fatalf("sweep detected %d mutants, need at least %d", res.Detected, budget)
	}
	events := tr.Events()
	if got := trace.CountKind(events, trace.KindSweepMutant, trace.PhaseBegin); got != budget {
		t.Fatalf("sweep.mutant begin spans = %d, want %d", got, budget)
	}
	if got := trace.CountKind(events, trace.KindSweepMutant, trace.PhaseEnd); got != budget {
		t.Fatalf("sweep.mutant end spans = %d, want %d", got, budget)
	}
	// Sequence numbers must be unique and strictly increasing even though
	// eight workers emitted concurrently.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event %d: seq %d not after %d", i, events[i].Seq, events[i-1].Seq)
		}
	}
}

// TestRunSweepTraceDefaultsToOne: a non-nil tracer with TraceFailures left
// zero traces exactly one failing mutant.
func TestRunSweepTraceDefaultsToOne(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()

	tr := trace.New()
	if _, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1, Trace: tr}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if got := trace.CountKind(tr.Events(), trace.KindSweepMutant, trace.PhaseBegin); got != 1 {
		t.Fatalf("sweep.mutant begin spans = %d, want 1", got)
	}
}
