package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cfsmdiag/internal/obs"
	"cfsmdiag/internal/paper"
)

// TestRunSweepContextCanceled: a pre-canceled context stops the sweep before
// any mutant is diagnosed, in both the serial and the parallel engine.
func TestRunSweepContextCanceled(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := RunSweepContext(ctx, spec, suite, SweepOptions{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(res.Reports) != 0 {
			t.Errorf("workers=%d: %d reports under a canceled context", workers, len(res.Reports))
		}
	}
}

// TestRunSweepContextMidCancel cancels after a few mutants and checks the
// partial result is a prefix of the full sweep.
func TestRunSweepContextMidCancel(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	full, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.New()
	count := 0
	// Cancel from the serial engine's own goroutine via the per-mutant
	// metrics: abuse a registry observer would be indirect, so instead run
	// serially and cancel once a few reports exist by polling the counter.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for reg.Counter(metricSweepMutants, "", obs.L("outcome", OutcomeLocalizedCorrect.String())).Value() < 3 {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		cancel()
	}()
	res, err := RunSweepContext(ctx, spec, suite, SweepOptions{Workers: 1, Registry: reg})
	cancel()
	<-done
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if err == nil {
		t.Skip("sweep finished before cancellation on this machine")
	}
	count = len(res.Reports)
	if count >= len(full.Reports) {
		t.Fatalf("canceled sweep produced %d of %d reports", count, len(full.Reports))
	}
	for i, r := range res.Reports {
		if r.Fault != full.Reports[i].Fault || r.Outcome != full.Reports[i].Outcome {
			t.Fatalf("report %d diverged from the serial prefix", i)
		}
	}
}

// TestSweepMetrics: a parallel sweep with a registry records per-mutant
// latencies, outcome counts and the additional-test cost, and leaves the
// busy gauge at zero.
func TestSweepMetrics(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	reg := obs.New()
	RegisterSweepMetrics(reg)
	res, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(metricSweepMutant, "", obs.DefaultLatencyBuckets).Count(); got != uint64(len(res.Reports)) {
		t.Errorf("mutant histogram count = %d, want %d", got, len(res.Reports))
	}
	if got := reg.Histogram(metricSweepDuration, "", obs.DefaultLatencyBuckets).Count(); got != 1 {
		t.Errorf("sweep duration count = %d, want 1", got)
	}
	total := int64(0)
	for o := OutcomeUndetected; o <= OutcomeInconsistent; o++ {
		total += reg.Counter(metricSweepMutants, "", obs.L("outcome", o.String())).Value()
	}
	if total != int64(len(res.Reports)) {
		t.Errorf("outcome counters sum = %d, want %d", total, len(res.Reports))
	}
	if got := reg.Counter(metricSweepAddlTests, "").Value(); got != int64(res.TotalAdditionalTests) {
		t.Errorf("additional tests counter = %d, want %d", got, res.TotalAdditionalTests)
	}
	if got := reg.Gauge(metricSweepBusy, "").Value(); got != 0 {
		t.Errorf("busy gauge = %d after sweep, want 0", got)
	}
	if got := reg.Gauge(metricSweepWorkers, "").Value(); got != 4 {
		t.Errorf("workers gauge = %d, want 4", got)
	}
}

// TestSweepMetricsDeterminism: instrumentation must not perturb results —
// a sweep with a registry equals one without, for any worker count.
func TestSweepMetricsDeterminism(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	plain, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 3, Registry: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Reports) != len(instrumented.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(plain.Reports), len(instrumented.Reports))
	}
	for i := range plain.Reports {
		if plain.Reports[i] != instrumented.Reports[i] {
			t.Fatalf("report %d differs with instrumentation: %+v vs %+v",
				i, plain.Reports[i], instrumented.Reports[i])
		}
	}
}

// TestConcurrentSweepSharedRegistry runs two parallel sweeps plus the core
// pipeline against ONE registry (run under -race): registry updates from
// many workers must be safe.
func TestConcurrentSweepSharedRegistry(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	reg := obs.New()
	RegisterSweepMetrics(reg)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 4, Registry: reg}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := reg.Histogram(metricSweepDuration, "", obs.DefaultLatencyBuckets).Count(); got != 2 {
		t.Errorf("sweep duration count = %d, want 2", got)
	}
}
