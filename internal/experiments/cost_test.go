package experiments

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/randgen"
)

func TestCostSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("cost sweep is slow")
	}
	points, err := CostSweep(3, 3, 16, []int64{1})
	if err != nil {
		t.Fatalf("CostSweep: %v", err)
	}
	if len(points) != 2 { // N = 2 and N = 3, one seed each
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.ProductSt == 0 || p.ExhaustiveIn == 0 {
			t.Errorf("degenerate point %+v", p)
		}
		// Zero adaptive cost (no additional tests needed) is the best case;
		// otherwise the adaptive route must beat the exhaustive baseline.
		if p.AvgAdaptiveIn > 0 && p.Ratio() < 1 {
			t.Errorf("adaptive should beat exhaustive: %+v", p)
		}
	}
	// The product grows with N.
	if points[1].ProductTr <= points[0].ProductTr {
		t.Errorf("product did not grow with N: %d then %d",
			points[0].ProductTr, points[1].ProductTr)
	}
}

func TestRunCostStrideClamped(t *testing.T) {
	// A non-positive stride is clamped to 1 rather than panicking.
	spec := smallSystem(t)
	p, err := RunCost("clamp", spec, 0)
	if err != nil {
		t.Fatalf("RunCost: %v", err)
	}
	if p.MutantsSampled == 0 {
		t.Fatal("no mutants sampled")
	}
}

func smallSystem(t *testing.T) *cfsm.System {
	t.Helper()
	cfg := randgen.Config{N: 2, States: 2, ExtInputs: 2, Messages: 2, IntInputs: 1, Density: 0.6, Seed: 4}
	sys, err := randgen.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sys
}
