package experiments

import "testing"

// TestRunCompileBench runs experiment E14 end to end: the record must carry
// a real measurement for every field, and the built-in equivalence gate
// (identical sweep outcomes on both engines) must hold. Skipped in -short
// mode: the measurement loops take several seconds by design.
func TestRunCompileBench(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs benchmark loops; skipped in -short mode")
	}
	rec, err := RunCompileBench()
	if err != nil {
		t.Fatal(err)
	}
	if rec.System != "figure1" || rec.Mutants != 145 || rec.SuiteCases != 2 {
		t.Fatalf("bad record header: %+v", rec)
	}
	if rec.CompileNsPerOp <= 0 || rec.NumSymbols <= 0 || rec.Configurations <= 0 {
		t.Fatalf("compile stats missing: %+v", rec)
	}
	for name, v := range map[string]int64{
		"interpreted_sweep_ns_per_op": rec.InterpretedSweepNsPerOp,
		"compiled_sweep_ns_per_op":    rec.CompiledSweepNsPerOp,
		"interpreted_ns_per_mutant":   rec.InterpretedNsPerMutant,
		"compiled_ns_per_mutant":      rec.CompiledNsPerMutant,
		"json_parse_ns_per_op":        rec.JSONParseNsPerOp,
		"binary_decode_ns_per_op":     rec.BinaryDecodeNsPerOp,
		"registry_hit_ns_per_op":      rec.RegistryHitNsPerOp,
	} {
		if v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}
	if rec.SweepSpeedup <= 1 {
		t.Errorf("compiled sweep is not faster than interpreted (speedup %.2f)", rec.SweepSpeedup)
	}
	if rec.RegistryHitNsPerOp >= rec.JSONParseNsPerOp {
		t.Errorf("registry hit (%d ns) not cheaper than a JSON parse (%d ns)",
			rec.RegistryHitNsPerOp, rec.JSONParseNsPerOp)
	}
}
