package experiments

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/compiled"
	"cfsmdiag/internal/paper"
)

// CompileBenchRecord is the machine-readable record of experiment E14
// (BENCH_compile.json): what lowering the specification into the dense
// compiled representation costs, and what the diagnosis hot paths gain.
// All sweep numbers are serial (Workers: 1) so the comparison isolates the
// representation, not the worker pool.
type CompileBenchRecord struct {
	System     string `json:"system"`
	Mutants    int    `json:"mutants"`
	SuiteCases int    `json:"suite_cases"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// CompileNsPerOp is the one-off cost of compiled.Compile — paid once per
	// sweep and amortized over every mutant.
	CompileNsPerOp int64 `json:"compile_ns_per_op"`
	NumSymbols     int   `json:"num_symbols"`
	Configurations int   `json:"configurations"`

	InterpretedSweepNsPerOp  int64 `json:"interpreted_sweep_ns_per_op"`
	InterpretedNsPerMutant   int64 `json:"interpreted_ns_per_mutant"`
	InterpretedAllocsPerOp   int64 `json:"interpreted_allocs_per_op"`
	CompiledSweepNsPerOp     int64 `json:"compiled_sweep_ns_per_op"`
	CompiledNsPerMutant      int64 `json:"compiled_ns_per_mutant"`
	CompiledAllocsPerOp      int64 `json:"compiled_allocs_per_op"`
	SweepSpeedup             float64 `json:"sweep_speedup"`
	SweepAllocReductionRatio float64 `json:"sweep_alloc_reduction_ratio"`

	// The model-load trio: what a request pays to obtain a validated system
	// from each on-disk form, and what the server's content-addressed
	// registry pays on a hit (hash the bytes, look the model up).
	JSONParseNsPerOp    int64 `json:"json_parse_ns_per_op"`
	BinaryDecodeNsPerOp int64 `json:"binary_decode_ns_per_op"`
	RegistryHitNsPerOp  int64 `json:"registry_hit_ns_per_op"`
}

// RunCompileBench measures experiment E14 on the Figure 1 workload: compile
// cost, the serial sweep on the interpreted vs the compiled engine, and the
// model-load paths backing the server's registry. It fails when the two
// engines disagree on any sweep outcome — the speedup is only meaningful if
// the answers are identical.
func RunCompileBench() (CompileBenchRecord, error) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()

	rec := CompileBenchRecord{
		System:     "figure1",
		SuiteCases: len(suite),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	prog, err := compiled.Compile(spec)
	if err != nil {
		return rec, err
	}
	rec.NumSymbols = prog.NumSymbols()
	rec.Configurations = int(prog.Configs())

	// The two engines must agree before their speeds are compared.
	interpreted, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1, Interpreted: true})
	if err != nil {
		return rec, err
	}
	compiledRes, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1})
	if err != nil {
		return rec, err
	}
	rec.Mutants = len(interpreted.Reports)
	if len(compiledRes.Reports) != len(interpreted.Reports) {
		return rec, fmt.Errorf("engines disagree on the mutant count: %d vs %d",
			len(interpreted.Reports), len(compiledRes.Reports))
	}
	for i := range interpreted.Reports {
		a, b := interpreted.Reports[i], compiledRes.Reports[i]
		if a.Fault != b.Fault || a.Outcome != b.Outcome || a.AdditionalTests != b.AdditionalTests {
			return rec, fmt.Errorf("engines disagree on mutant %d (%s): %s/%d vs %s/%d",
				i, a.Fault.Describe(spec), a.Outcome, a.AdditionalTests, b.Outcome, b.AdditionalTests)
		}
	}

	compileBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Compile(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec.CompileNsPerOp = compileBench.NsPerOp()

	sweepBench := func(interp bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1, Interpreted: interp}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	ib := sweepBench(true)
	rec.InterpretedSweepNsPerOp = ib.NsPerOp()
	rec.InterpretedNsPerMutant = ib.NsPerOp() / int64(rec.Mutants)
	rec.InterpretedAllocsPerOp = ib.AllocsPerOp()

	cb := sweepBench(false)
	rec.CompiledSweepNsPerOp = cb.NsPerOp()
	rec.CompiledNsPerMutant = cb.NsPerOp() / int64(rec.Mutants)
	rec.CompiledAllocsPerOp = cb.AllocsPerOp()
	rec.SweepSpeedup = float64(ib.NsPerOp()) / float64(cb.NsPerOp())
	if cb.AllocsPerOp() > 0 {
		rec.SweepAllocReductionRatio = float64(ib.AllocsPerOp()) / float64(cb.AllocsPerOp())
	}

	// Model-load paths. The registry hit is emulated exactly as the server
	// keys its cache: hash the submitted bytes, look the parsed model up.
	jsonBytes, err := spec.MarshalJSON()
	if err != nil {
		return rec, err
	}
	binBytes := compiled.EncodeSystem(spec)
	jp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cfsm.ParseSystem(jsonBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec.JSONParseNsPerOp = jp.NsPerOp()
	bd := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.DecodeSystem(binBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec.BinaryDecodeNsPerOp = bd.NsPerOp()
	cache := map[string]*cfsm.System{}
	sum := sha256.Sum256(jsonBytes)
	cache[string(sum[:])] = spec
	hit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := sha256.Sum256(jsonBytes)
			if cache[string(k[:])] == nil {
				b.Fatal("registry miss")
			}
		}
	})
	rec.RegistryHitNsPerOp = hit.NsPerOp()
	return rec, nil
}
