package experiments

import (
	"strings"
	"testing"

	"cfsmdiag/internal/obs"
)

// TestRunJobsBench exercises experiment E13 at a reduced size: every unique
// payload diagnoses a real Figure 1 mutant, every duplicate must be served
// from the result cache, and the record's accounting adds up.
func TestRunJobsBench(t *testing.T) {
	reg := obs.New()
	rec, err := RunJobsBench(JobsBenchOptions{
		Jobs:     30,
		Unique:   10,
		Workers:  2,
		Seed:     7,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Unique != 10 || rec.Duplicates != 20 {
		t.Fatalf("unique=%d duplicates=%d, want 10/20", rec.Unique, rec.Duplicates)
	}
	if rec.CacheHits != 20 {
		t.Fatalf("cache hits = %d, want 20", rec.CacheHits)
	}
	if rec.Workers != 2 {
		t.Fatalf("workers = %d, want 2", rec.Workers)
	}
	if rec.ColdJobsPerSec <= 0 || rec.CachedJobsPerSec <= 0 {
		t.Fatalf("non-positive throughput: cold %.2f cached %.2f", rec.ColdJobsPerSec, rec.CachedJobsPerSec)
	}
	if rec.Mutants <= 0 || rec.System != "figure1" {
		t.Fatalf("bad record header: %+v", rec)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cfsmdiag_jobs_cache_hits_total 20") {
		t.Fatalf("registry missing cache-hit count:\n%s", buf.String())
	}
}

// TestRunJobsBenchClampsUnique pins the clamping rules: Unique above the
// mutant space falls back to the mutant count, and Unique above Jobs is
// capped at Jobs.
func TestRunJobsBenchClampsUnique(t *testing.T) {
	rec, err := RunJobsBench(JobsBenchOptions{Jobs: 5, Unique: 10_000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Unique != 5 || rec.Duplicates != 0 {
		t.Fatalf("unique=%d duplicates=%d, want 5/0", rec.Unique, rec.Duplicates)
	}
}
