package experiments

import "testing"

// TestRunChaosSafetyAndConvergence asserts the two E12 claims: at moderate
// injection rates the hardened localization still reproduces the paper's
// diagnosis for most fault schedules, and no schedule at any rate ever
// convicts a wrong transition.
func TestRunChaosSafetyAndConvergence(t *testing.T) {
	points, err := RunChaos([]float64{0, 0.1, 0.2, 0.4}, 10, DefaultChaosConfig)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, p := range points {
		if p.Wrong != 0 {
			t.Errorf("p=%.2f: %d wrong convictions — the safety property is broken", p.P, p.Wrong)
		}
		if p.Localized+p.Inconclusive != p.Seeds {
			t.Errorf("p=%.2f: %d+%d runs classified, want %d", p.P, p.Localized, p.Inconclusive, p.Seeds)
		}
	}
	if points[0].P != 0 || points[0].Localized != points[0].Seeds {
		t.Errorf("p=0 must localize every run: %+v", points[0])
	}
	if points[0].Injections != 0 || points[0].Retries != 0 {
		t.Errorf("p=0 must inject nothing: %+v", points[0])
	}
	// The acceptance rate: at p=0.2 the retry/vote budget still wins
	// clearly more often than not.
	if p := points[2]; p.SuccessRate() < 0.7 {
		t.Errorf("p=0.2 success rate = %.2f, want >= 0.7 (%+v)", p.SuccessRate(), p)
	}
	if p := points[2]; p.Injections == 0 || p.Retries == 0 {
		t.Errorf("p=0.2 left no injection/retry footprint: %+v", p)
	}
}

// TestRunChaosDeterministic pins reproducibility: the table is a pure
// function of probabilities, seed count and budget.
func TestRunChaosDeterministic(t *testing.T) {
	a, err := RunChaos([]float64{0.2}, 5, DefaultChaosConfig)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	b, err := RunChaos([]float64{0.2}, 5, DefaultChaosConfig)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if a[0] != b[0] {
		t.Errorf("chaos sweep not reproducible:\n%+v\n%+v", a[0], b[0])
	}
}
