// Package experiments implements the reproduction experiments E1–E6 indexed
// in DESIGN.md §5: the regeneration of Table 1, the Section 4 walkthrough
// (Steps 3–5), the Step 6/Figure 2 adaptive localization, the exhaustive
// single-fault sweep, and the cost comparisons backing the paper's
// "shorter test suites" claim. The cmd/paperrepro harness prints these
// results; bench_test.go benchmarks them; the test suites assert on them.
package experiments

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/paper"
)

// Table1Row is one computed row of Table 1 next to the paper's printed row.
type Table1Row struct {
	Name          string
	Inputs        string
	WantExpected  string
	GotExpected   string
	WantObserved  string
	GotObserved   string
	SpecTrace     string // the "Spec. transitions" row, computed
	ExpectedMatch bool
	ObservedMatch bool
}

// Table1Result is the outcome of experiment E1.
type Table1Result struct {
	Rows []Table1Row
}

// Match reports whether every computed cell equals the paper's.
func (r Table1Result) Match() bool {
	for _, row := range r.Rows {
		if !row.ExpectedMatch || !row.ObservedMatch {
			return false
		}
	}
	return true
}

// RunTable1 regenerates Table 1 (E1): the expected outputs by simulating the
// reconstructed Figure 1 specification, the observed outputs by simulating
// the implementation with the t"4 transfer fault.
func RunTable1() (Table1Result, error) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		return Table1Result{}, err
	}
	suite := paper.TestSuite()
	want := paper.Table1()
	var res Table1Result
	for i, tc := range suite {
		expected, steps, err := spec.RunTrace(tc)
		if err != nil {
			return Table1Result{}, fmt.Errorf("simulate %s: %w", tc.Name, err)
		}
		observed, err := iut.Run(tc)
		if err != nil {
			return Table1Result{}, fmt.Errorf("simulate IUT %s: %w", tc.Name, err)
		}
		trace := ""
		for j, ex := range steps {
			if j > 0 {
				trace += ", "
			}
			if len(ex) == 0 {
				trace += "-"
			}
			for k, e := range ex {
				if k > 0 {
					trace += " "
				}
				trace += e.Trans.Name
			}
		}
		row := Table1Row{
			Name:         tc.Name,
			Inputs:       cfsm.FormatInputs(tc.Inputs),
			WantExpected: want[i].Expected,
			GotExpected:  cfsm.FormatObs(expected),
			WantObserved: want[i].Observed,
			GotObserved:  cfsm.FormatObs(observed),
			SpecTrace:    trace,
		}
		row.ExpectedMatch = row.GotExpected == row.WantExpected
		row.ObservedMatch = row.GotObserved == row.WantObserved
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WalkthroughResult is the outcome of experiments E2 and E3: the Steps 1–5
// analysis and the Step 6 localization of the paper's scenario.
type WalkthroughResult struct {
	Analysis     *core.Analysis
	Localization *core.Localization
	Oracle       *core.SystemOracle
}

// RunWalkthrough reproduces the Section 4 walkthrough end to end (E2 + E3).
func RunWalkthrough() (WalkthroughResult, error) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		return WalkthroughResult{}, err
	}
	suite := paper.TestSuite()
	observed, err := iut.RunSuite(suite)
	if err != nil {
		return WalkthroughResult{}, err
	}
	a, err := core.Analyze(spec, suite, observed)
	if err != nil {
		return WalkthroughResult{}, err
	}
	oracle := &core.SystemOracle{Sys: iut}
	loc, err := core.Localize(a, oracle)
	if err != nil {
		return WalkthroughResult{}, err
	}
	return WalkthroughResult{Analysis: a, Localization: loc, Oracle: oracle}, nil
}
