package experiments

import (
	"context"
	"fmt"
	"time"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/resilient"
)

// ChaosPoint is one row of the chaos experiment (E12): the Figure 1
// localization repeated over Seeds seeded fault schedules at injection
// probability P per mode (drop, garble) plus P/2 transient errors.
type ChaosPoint struct {
	P            float64
	Seeds        int
	Localized    int   // runs that convicted the paper's t"4 transfer fault
	Inconclusive int   // runs degraded to the inconclusive-observation verdict
	Wrong        int   // runs that convicted anything else (must stay 0)
	Injections   int   // faults injected across all runs
	Retries      int64 // oracle re-executions across all runs
	Unreliable   int64 // queries abandoned as unreliable across all runs
}

// SuccessRate is the fraction of runs that still reproduced the paper's
// diagnosis.
func (p ChaosPoint) SuccessRate() float64 {
	if p.Seeds == 0 {
		return 0
	}
	return float64(p.Localized) / float64(p.Seeds)
}

// ChaosConfig fixes the resilient-layer budget the sweep runs under.
type ChaosConfig struct {
	Votes   int // majority-vote repetitions per diagnostic test
	Retries int // failed executions tolerated per query
}

// DefaultChaosConfig is the budget EXPERIMENTS.md's E12 table is produced
// with: 3-way voting, 12 retries.
var DefaultChaosConfig = ChaosConfig{Votes: 3, Retries: 12}

// RunChaos sweeps the injected-fault probability over the Figure 1 / t"4
// localization hardened by the resilient retry layer. For every probability
// it runs `seeds` independent seeded fault schedules and classifies each
// verdict. The whole sweep is deterministic: same probabilities, seeds and
// config, same table.
//
// The safety property the resilient layer guarantees is that Wrong stays 0
// at every probability: a run may degrade to inconclusive when the retry
// and vote budget cannot outlast the injected noise, but a conviction is
// only ever the true fault. Experiment tests assert exactly that.
func RunChaos(probabilities []float64, seeds int, cfg ChaosConfig) ([]ChaosPoint, error) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		return nil, err
	}
	suite := paper.TestSuite()
	observed := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		if observed[i], err = iut.Run(tc); err != nil {
			return nil, fmt.Errorf("simulate %s: %w", tc.Name, err)
		}
	}
	want := fault.Fault{Ref: paper.FaultRef, Kind: fault.KindTransfer, To: "s0"}

	var points []ChaosPoint
	for _, p := range probabilities {
		point := ChaosPoint{P: p, Seeds: seeds}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			// Steps 1–5 run on the cleanly recorded suite observations; the
			// chaos stack perturbs only the live Step-6 diagnostic tests.
			a, err := core.Analyze(spec, suite, observed)
			if err != nil {
				return nil, err
			}
			injector := resilient.NewFaultInjector(&core.SystemOracle{Sys: iut}, resilient.InjectConfig{
				Drop: p, Garble: p, Transient: p / 2, Seed: seed,
			})
			oracle := resilient.NewRetryOracle(injector, resilient.RetryConfig{
				Votes: cfg.Votes, Retries: cfg.Retries, Seed: seed,
				// The sweep needs no real backoff; sleeping would only slow
				// the table down.
				Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
			})
			loc, err := core.Localize(a, oracle)
			if err != nil {
				return nil, fmt.Errorf("p=%.2f seed=%d: %w", p, seed, err)
			}
			switch {
			case loc.Verdict == core.VerdictLocalized && loc.Fault != nil && *loc.Fault == want:
				point.Localized++
			case loc.Verdict == core.VerdictLocalized:
				point.Wrong++
			case loc.Verdict == core.VerdictInconclusive:
				point.Inconclusive++
			default:
				return nil, fmt.Errorf("p=%.2f seed=%d: unexpected verdict %v", p, seed, loc.Verdict)
			}
			st := oracle.Stats()
			point.Injections += injector.InjectedTotal()
			point.Retries += st.Retries
			point.Unreliable += st.Unreliable
		}
		points = append(points, point)
	}
	return points, nil
}
