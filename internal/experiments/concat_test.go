package experiments

import (
	"testing"

	"cfsmdiag/internal/core"
)

func TestRunConcatScaling(t *testing.T) {
	for _, k := range []int{1, 3} {
		p, err := RunConcatScaling(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.Verdict != core.VerdictLocalized || !p.CorrectRef {
			t.Errorf("k=%d: verdict %v correct=%v", k, p.Verdict, p.CorrectRef)
		}
		if p.Machines != (k+1)*2+1 {
			t.Errorf("k=%d: machines = %d", k, p.Machines)
		}
	}
	if _, err := RunConcatScaling(0); err == nil {
		t.Error("want error for k=0")
	}
}
