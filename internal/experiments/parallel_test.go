package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/testgen"
)

// assertSweepsIdentical fails unless the two sweep results are identical in
// every observable field — the determinism guarantee of the parallel engine.
func assertSweepsIdentical(t *testing.T, label string, serial, parallel SweepResult) {
	t.Helper()
	if !reflect.DeepEqual(serial.Reports, parallel.Reports) {
		if len(serial.Reports) != len(parallel.Reports) {
			t.Fatalf("%s: report count %d vs %d", label, len(serial.Reports), len(parallel.Reports))
		}
		for i := range serial.Reports {
			if serial.Reports[i] != parallel.Reports[i] {
				t.Errorf("%s: report %d differs:\n  serial   %+v\n  parallel %+v",
					label, i, serial.Reports[i], parallel.Reports[i])
			}
		}
		t.FailNow()
	}
	if !reflect.DeepEqual(serial.Counts, parallel.Counts) {
		t.Fatalf("%s: counts %v vs %v", label, serial.Counts, parallel.Counts)
	}
	if serial.Detected != parallel.Detected ||
		serial.UndetectedEquivalent != parallel.UndetectedEquivalent ||
		serial.TotalAdditionalTests != parallel.TotalAdditionalTests ||
		serial.TotalAdditionalInputs != parallel.TotalAdditionalInputs {
		t.Fatalf("%s: aggregates differ: serial {det %d, equiv %d, tests %d, inputs %d} vs parallel {det %d, equiv %d, tests %d, inputs %d}",
			label,
			serial.Detected, serial.UndetectedEquivalent, serial.TotalAdditionalTests, serial.TotalAdditionalInputs,
			parallel.Detected, parallel.UndetectedEquivalent, parallel.TotalAdditionalTests, parallel.TotalAdditionalInputs)
	}
}

// TestRunSweepParallelMatchesSerial is the determinism contract of the
// tentpole: the Workers: 8 sweep over the Figure 1 system must be identical
// — reports, counts, totals — to the Workers: 1 (historical serial) run.
// Running this test under -race also exercises the concurrent read paths of
// the shared specification and suite.
func TestRunSweepParallelMatchesSerial(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()

	serial, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	if len(serial.Reports) == 0 {
		t.Fatal("serial sweep produced no reports")
	}
	for _, workers := range []int{2, 8} {
		par, err := RunSweepOpts(spec, suite, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("parallel sweep (workers=%d): %v", workers, err)
		}
		assertSweepsIdentical(t, "paperTS", serial, par)
	}
}

// TestRunSweepParallelWithEquivalence covers the equivalence-checking
// branches (undetected and wrongly-localized mutants) under parallelism,
// with the tour suite that leaves a handful of undetected transfer faults.
func TestRunSweepParallelWithEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep with equivalence checks is slow")
	}
	spec := paper.MustFigure1()
	suite, uncovered := testgen.Tour(spec, 0)
	if len(uncovered) != 0 {
		t.Fatalf("tour left %v uncovered", uncovered)
	}
	serial, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1, CheckEquivalence: true})
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	par, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 8, CheckEquivalence: true})
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	assertSweepsIdentical(t, "tour+equiv", serial, par)
}

// TestRunSweepDefaultWorkers pins the defaulting rule: Workers: 0 must
// select GOMAXPROCS and still produce the serial result.
func TestRunSweepDefaultWorkers(t *testing.T) {
	if got := (SweepOptions{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (SweepOptions{Workers: -3}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (SweepOptions{Workers: 5}).workers(); got != 5 {
		t.Fatalf("explicit workers = %d, want 5", got)
	}
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	serial, err := RunSweepOpts(spec, suite, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	def, err := RunSweep(spec, suite, false)
	if err != nil {
		t.Fatalf("default sweep: %v", err)
	}
	assertSweepsIdentical(t, "default-workers", serial, def)
}

// TestCostSweepParallelMatchesSerial checks the E6 scaling runner: the
// worker-pool point computation must return exactly the serial point list.
func TestCostSweepParallelMatchesSerial(t *testing.T) {
	seeds := []int64{1, 2}
	serial, err := CostSweepOpts(3, 3, 8, seeds, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial cost sweep: %v", err)
	}
	if len(serial) != 4 {
		t.Fatalf("expected 4 points (N=2,3 × 2 seeds), got %d", len(serial))
	}
	par, err := CostSweepOpts(3, 3, 8, seeds, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatalf("parallel cost sweep: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("cost points differ:\n  serial   %+v\n  parallel %+v", serial, par)
	}
}
