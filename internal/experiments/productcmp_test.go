package experiments

import (
	"strings"
	"testing"
)

func TestRunProductComparison(t *testing.T) {
	c, err := RunProductComparison()
	if err != nil {
		t.Fatalf("RunProductComparison: %v", err)
	}
	// The paper's motivation: the equivalent machine is "too big".
	if c.ProductTr <= c.SystemTrans*5 {
		t.Errorf("product transitions = %d, expected ≫ %d component transitions",
			c.ProductTr, c.SystemTrans)
	}
	if c.ProductSt < c.SystemStates {
		t.Errorf("product states = %d < %d", c.ProductSt, c.SystemStates)
	}
	// And "less convenient": the CFSM route produces the paper's three
	// precise diagnoses, the product route a larger, component-unaware set.
	if c.CFSMDiagnoses != 3 {
		t.Errorf("CFSM diagnoses = %d, want 3", c.CFSMDiagnoses)
	}
	if c.ProductDiagnoses <= c.CFSMDiagnoses {
		t.Errorf("product diagnoses = %d, expected more than the CFSM's %d",
			c.ProductDiagnoses, c.CFSMDiagnoses)
	}
	if c.CFSMCandidates != 8 {
		t.Errorf("CFSM candidates = %d, want 8 (ITC sizes 3+2+3)", c.CFSMCandidates)
	}
	report := c.Report()
	for _, want := range []string{"representation:", "candidates:", "diagnoses:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
