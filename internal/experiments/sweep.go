package experiments

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/testgen"
)

// MutantOutcome classifies the diagnosis of one mutant in a sweep.
type MutantOutcome int

// Sweep outcome classes.
const (
	// OutcomeUndetected: the initial suite produced no symptom.
	OutcomeUndetected MutantOutcome = iota + 1
	// OutcomeLocalizedCorrect: the verdict named the faulty transition (the
	// paper's guarantee is transition-level localization; the ExactFault
	// flag of the report records whether the fault detail matched too).
	OutcomeLocalizedCorrect
	// OutcomeLocalizedEquivalent: the verdict named a different transition,
	// but injecting the diagnosed fault is observationally equivalent to
	// the true mutant — indistinguishable by any test.
	OutcomeLocalizedEquivalent
	// OutcomeLocalizedWrong: the verdict named a non-equivalent wrong fault.
	OutcomeLocalizedWrong
	// OutcomeAmbiguousContainsTruth: several hypotheses remain, the faulty
	// transition among them.
	OutcomeAmbiguousContainsTruth
	// OutcomeAmbiguousMissesTruth: several hypotheses remain, none naming
	// the faulty transition.
	OutcomeAmbiguousMissesTruth
	// OutcomeInconsistent: the algorithm declared the observations outside
	// the fault model — a defect for an in-model mutant.
	OutcomeInconsistent
)

// String names the outcome.
func (o MutantOutcome) String() string {
	switch o {
	case OutcomeUndetected:
		return "undetected"
	case OutcomeLocalizedCorrect:
		return "localized-correct"
	case OutcomeLocalizedEquivalent:
		return "localized-equivalent"
	case OutcomeLocalizedWrong:
		return "localized-wrong"
	case OutcomeAmbiguousContainsTruth:
		return "ambiguous-contains-truth"
	case OutcomeAmbiguousMissesTruth:
		return "ambiguous-misses-truth"
	case OutcomeInconsistent:
		return "inconsistent"
	default:
		return fmt.Sprintf("MutantOutcome(%d)", int(o))
	}
}

// MutantReport is the sweep record for one mutant.
type MutantReport struct {
	Fault           fault.Fault
	Outcome         MutantOutcome
	AdditionalTests int
	AdditionalIn    int
	// ExactFault is set when the diagnosed fault matched the injected one
	// exactly (kind, output and next state), not just the transition.
	ExactFault bool
	// EquivalentToSpec is set for undetected mutants that are provably
	// indistinguishable from the specification (no test suite could detect
	// them).
	EquivalentToSpec bool
}

// SweepResult aggregates a sweep (experiment E5).
type SweepResult struct {
	Spec    *cfsm.System
	Suite   []cfsm.TestCase
	Reports []MutantReport
	Counts  map[MutantOutcome]int
	// UndetectedEquivalent counts undetected mutants that are equivalent to
	// the specification, i.e. inherently undetectable.
	UndetectedEquivalent int
	// TotalAdditionalTests and TotalAdditionalInputs accumulate the
	// adaptive phase's cost over all detected mutants.
	TotalAdditionalTests  int
	TotalAdditionalInputs int
	Detected              int
}

// RunSweep injects every single-transition fault into the specification,
// executes the given initial suite against each mutant, runs the full
// diagnosis and classifies the result (experiment E5). checkEquivalence
// controls whether undetected and wrongly-localized mutants are checked for
// observational equivalence (quadratic-ish; disable in benchmarks).
func RunSweep(spec *cfsm.System, suite []cfsm.TestCase, checkEquivalence bool) (SweepResult, error) {
	res := SweepResult{
		Spec:   spec,
		Suite:  suite,
		Counts: make(map[MutantOutcome]int),
	}
	for _, m := range fault.Mutants(spec) {
		report := MutantReport{Fault: m.Fault}
		oracle := &core.SystemOracle{Sys: m.System}
		loc, err := core.Diagnose(spec, suite, oracle)
		if err != nil {
			return res, fmt.Errorf("diagnose %s: %w", m.Fault.Describe(spec), err)
		}
		suiteTests := len(suite)
		report.AdditionalTests = oracle.Tests - suiteTests
		report.AdditionalIn = oracle.Inputs
		switch loc.Verdict {
		case core.VerdictNoFault:
			report.Outcome = OutcomeUndetected
			if checkEquivalence {
				report.EquivalentToSpec = testgen.SystemsEquivalent(spec, m.System)
				if report.EquivalentToSpec {
					res.UndetectedEquivalent++
				}
			}
		case core.VerdictLocalized:
			res.Detected++
			switch {
			case loc.Fault.Ref == m.Fault.Ref:
				report.Outcome = OutcomeLocalizedCorrect
				report.ExactFault = *loc.Fault == m.Fault
			default:
				report.Outcome = OutcomeLocalizedWrong
				if checkEquivalence && diagnosedEquivalent(spec, *loc.Fault, m.System) {
					report.Outcome = OutcomeLocalizedEquivalent
				}
			}
		case core.VerdictAmbiguous:
			res.Detected++
			report.Outcome = OutcomeAmbiguousMissesTruth
			for _, r := range loc.Remaining {
				if r.Ref == m.Fault.Ref {
					report.Outcome = OutcomeAmbiguousContainsTruth
					break
				}
			}
		default:
			res.Detected++
			report.Outcome = OutcomeInconsistent
		}
		if report.Outcome != OutcomeUndetected {
			res.TotalAdditionalTests += report.AdditionalTests
			res.TotalAdditionalInputs += report.AdditionalIn
		}
		res.Counts[report.Outcome]++
		res.Reports = append(res.Reports, report)
	}
	return res, nil
}

func diagnosedEquivalent(spec *cfsm.System, diagnosed fault.Fault, mutant *cfsm.System) bool {
	sys, err := diagnosed.Apply(spec)
	if err != nil {
		return false
	}
	return testgen.SystemsEquivalent(sys, mutant)
}
