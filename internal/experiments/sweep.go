package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/compiled"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/obs"
	"cfsmdiag/internal/testgen"
	"cfsmdiag/internal/trace"
)

// MutantOutcome classifies the diagnosis of one mutant in a sweep.
type MutantOutcome int

// Sweep outcome classes.
const (
	// OutcomeUndetected: the initial suite produced no symptom.
	OutcomeUndetected MutantOutcome = iota + 1
	// OutcomeLocalizedCorrect: the verdict named the faulty transition (the
	// paper's guarantee is transition-level localization; the ExactFault
	// flag of the report records whether the fault detail matched too).
	OutcomeLocalizedCorrect
	// OutcomeLocalizedEquivalent: the verdict named a different transition,
	// but injecting the diagnosed fault is observationally equivalent to
	// the true mutant — indistinguishable by any test.
	OutcomeLocalizedEquivalent
	// OutcomeLocalizedWrong: the verdict named a non-equivalent wrong fault.
	OutcomeLocalizedWrong
	// OutcomeAmbiguousContainsTruth: several hypotheses remain, the faulty
	// transition among them.
	OutcomeAmbiguousContainsTruth
	// OutcomeAmbiguousMissesTruth: several hypotheses remain, none naming
	// the faulty transition.
	OutcomeAmbiguousMissesTruth
	// OutcomeInconsistent: the algorithm declared the observations outside
	// the fault model — a defect for an in-model mutant.
	OutcomeInconsistent
)

// String names the outcome.
func (o MutantOutcome) String() string {
	switch o {
	case OutcomeUndetected:
		return "undetected"
	case OutcomeLocalizedCorrect:
		return "localized-correct"
	case OutcomeLocalizedEquivalent:
		return "localized-equivalent"
	case OutcomeLocalizedWrong:
		return "localized-wrong"
	case OutcomeAmbiguousContainsTruth:
		return "ambiguous-contains-truth"
	case OutcomeAmbiguousMissesTruth:
		return "ambiguous-misses-truth"
	case OutcomeInconsistent:
		return "inconsistent"
	default:
		return fmt.Sprintf("MutantOutcome(%d)", int(o))
	}
}

// MutantReport is the sweep record for one mutant.
type MutantReport struct {
	Fault           fault.Fault
	Outcome         MutantOutcome
	AdditionalTests int
	AdditionalIn    int
	// ExactFault is set when the diagnosed fault matched the injected one
	// exactly (kind, output and next state), not just the transition.
	ExactFault bool
	// EquivalentToSpec is set for undetected mutants that are provably
	// indistinguishable from the specification (no test suite could detect
	// them).
	EquivalentToSpec bool
}

// SweepResult aggregates a sweep (experiment E5).
type SweepResult struct {
	Spec    *cfsm.System
	Suite   []cfsm.TestCase
	Reports []MutantReport
	Counts  map[MutantOutcome]int
	// UndetectedEquivalent counts undetected mutants that are equivalent to
	// the specification, i.e. inherently undetectable.
	UndetectedEquivalent int
	// TotalAdditionalTests and TotalAdditionalInputs accumulate the
	// adaptive phase's cost over all detected mutants.
	TotalAdditionalTests  int
	TotalAdditionalInputs int
	Detected              int
}

// SweepOptions configures a sweep run.
type SweepOptions struct {
	// CheckEquivalence controls whether undetected and wrongly-localized
	// mutants are checked for observational equivalence (quadratic-ish;
	// disable in benchmarks).
	CheckEquivalence bool
	// Workers is the number of goroutines diagnosing mutants concurrently.
	// Zero or negative selects runtime.GOMAXPROCS(0). Workers == 1 runs the
	// exact historical serial path. Any worker count produces a
	// byte-identical SweepResult: reports stay in fault-enumeration order
	// and every count is merged deterministically.
	Workers int
	// Registry receives the sweep's telemetry (per-mutant latency histogram,
	// busy-worker gauge, outcome counters, whole-sweep duration). Nil — the
	// default — disables instrumentation.
	Registry *obs.Registry
	// Trace, when non-nil, records a structured trace for the first
	// TraceFailures mutants whose suite run reveals a symptom (a "failing"
	// IUT): each such mutant's diagnosis is re-run with core.WithTrace inside
	// a sweep.mutant span. The tracer is shared by all workers (it is safe
	// for concurrent use); under a parallel sweep the traced mutants are the
	// first N to finish, and spans from different mutants may interleave.
	Trace *trace.Tracer
	// TraceFailures caps how many failing mutants are traced. Zero with a
	// non-nil Trace means 1.
	TraceFailures int
	// Interpreted forces the historical string-keyed execution path. By
	// default the sweep compiles the specification into the dense table
	// representation (internal/compiled) once, shares the immutable program
	// across workers, and diagnoses every mutant against a one-cell table
	// overlay instead of a cloned system. The two paths produce byte-
	// identical SweepResults (pinned by differential tests); the sweep falls
	// back to the interpreted path automatically when the system's global
	// state space cannot be packed for the compiled searches.
	Interpreted bool
}

// Metric families of the sweep engine.
const (
	metricSweepDuration  = "cfsmdiag_sweep_duration_seconds"
	metricSweepMutant    = "cfsmdiag_sweep_mutant_seconds"
	metricSweepMutants   = "cfsmdiag_sweep_mutants_total"
	metricSweepBusy      = "cfsmdiag_sweep_workers_busy"
	metricSweepWorkers   = "cfsmdiag_sweep_workers"
	metricSweepAddlTests = "cfsmdiag_sweep_additional_tests_total"
)

// sweepMetrics bundles the sweep's pre-resolved handles; all nil-safe.
type sweepMetrics struct {
	reg      *obs.Registry
	duration *obs.Histogram
	mutant   *obs.Histogram
	busy     *obs.Gauge
	workers  *obs.Gauge
	addl     *obs.Counter
}

func newSweepMetrics(r *obs.Registry) sweepMetrics {
	if r == nil {
		return sweepMetrics{}
	}
	return sweepMetrics{
		reg:      r,
		duration: r.Histogram(metricSweepDuration, "Wall time of whole mutant sweeps.", obs.DefaultLatencyBuckets),
		mutant:   r.Histogram(metricSweepMutant, "Per-mutant diagnosis latency within a sweep.", obs.DefaultLatencyBuckets),
		busy:     r.Gauge(metricSweepBusy, "Sweep workers currently diagnosing a mutant (utilization against cfsmdiag_sweep_workers)."),
		workers:  r.Gauge(metricSweepWorkers, "Configured worker count of the most recent sweep."),
		addl:     r.Counter(metricSweepAddlTests, "Additional diagnostic tests generated across swept mutants."),
	}
}

// RegisterSweepMetrics pre-registers the sweep's metric families on a
// registry so an exposition endpoint lists them before the first sweep runs.
// No-op on nil.
func RegisterSweepMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	newSweepMetrics(r)
	for o := OutcomeUndetected; o <= OutcomeInconsistent; o++ {
		r.Counter(metricSweepMutants, "Swept mutants by diagnosis outcome.", obs.L("outcome", o.String()))
	}
}

// observe records one mutant's outcome and latency.
func (m sweepMetrics) observe(report MutantReport, elapsed time.Duration) {
	if m.reg == nil {
		return
	}
	m.mutant.Observe(elapsed.Seconds())
	m.addl.Add(int64(report.AdditionalTests))
	m.reg.Counter(metricSweepMutants, "Swept mutants by diagnosis outcome.",
		obs.L("outcome", report.Outcome.String())).Inc()
}

func (o SweepOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// RunSweep injects every single-transition fault into the specification,
// executes the given initial suite against each mutant, runs the full
// diagnosis and classifies the result (experiment E5). It parallelizes over
// runtime.GOMAXPROCS(0) workers; the result is identical to a serial run.
// checkEquivalence is as in SweepOptions.
func RunSweep(spec *cfsm.System, suite []cfsm.TestCase, checkEquivalence bool) (SweepResult, error) {
	return RunSweepOpts(spec, suite, SweepOptions{CheckEquivalence: checkEquivalence})
}

// RunSweepOpts is RunSweep with explicit worker and equivalence options.
//
// The mutant space is embarrassingly parallel: the specification and suite
// are shared read-only (see the cfsm.System concurrency guarantee) and each
// mutant's diagnosis is independent. Mutant systems are built inside the
// workers, one fault at a time, so the sweep never materializes the full
// mutant set. The first diagnosis error — in fault-enumeration order, as in
// the serial run — cancels the remaining work and is returned with the
// deterministic prefix of reports that precede the failing mutant.
func RunSweepOpts(spec *cfsm.System, suite []cfsm.TestCase, opts SweepOptions) (SweepResult, error) {
	return RunSweepContext(context.Background(), spec, suite, opts)
}

// RunSweepContext is RunSweepOpts with cancellation: canceling the context
// stops the worker dispatch, aborts in-flight diagnoses at their next oracle
// boundary, and returns ctx.Err() together with the deterministic prefix of
// reports completed before the cancellation.
func RunSweepContext(ctx context.Context, spec *cfsm.System, suite []cfsm.TestCase, opts SweepOptions) (SweepResult, error) {
	return runSweepFaults(ctx, spec, suite, fault.Enumerate(spec), opts)
}

// RunSweepRange diagnoses the faults with enumeration indices in [lo, hi) —
// the deterministic fault.Enumerate order — and returns their reports in that
// order. It is the unit of work of the distributed sweep: a cluster worker
// runs one range per lease, and concatenating the reports of the ranges
// [0,k), [k,2k), … reproduces a whole-space sweep byte for byte (the merge
// itself is MergeReports). Out-of-range bounds are clamped; an inverted
// range is empty.
func RunSweepRange(ctx context.Context, spec *cfsm.System, suite []cfsm.TestCase, opts SweepOptions, lo, hi int) ([]MutantReport, error) {
	faults := fault.Enumerate(spec)
	if lo < 0 {
		lo = 0
	}
	if hi > len(faults) {
		hi = len(faults)
	}
	if lo >= hi {
		return nil, nil
	}
	res, err := runSweepFaults(ctx, spec, suite, faults[lo:hi], opts)
	return res.Reports, err
}

// MergeReports folds per-mutant reports — already in fault-enumeration
// order — into the aggregate SweepResult, exactly as the local sweep loop
// does. The cluster coordinator uses it to merge worker-pushed ranges into a
// result byte-identical to a single-process sweep.
func MergeReports(spec *cfsm.System, suite []cfsm.TestCase, reports []MutantReport) SweepResult {
	res := SweepResult{
		Spec:   spec,
		Suite:  suite,
		Counts: make(map[MutantOutcome]int),
	}
	for _, r := range reports {
		res.add(r)
	}
	return res
}

// runSweepFaults is the sweep engine over an explicit fault list: the whole
// enumeration for the local sweep, one contiguous range for a cluster worker.
func runSweepFaults(ctx context.Context, spec *cfsm.System, suite []cfsm.TestCase, faults []fault.Fault, opts SweepOptions) (SweepResult, error) {
	res := SweepResult{
		Spec:   spec,
		Suite:  suite,
		Counts: make(map[MutantOutcome]int),
	}
	met := newSweepMetrics(opts.Registry)
	traceBudget := int64(0)
	if opts.Trace != nil {
		traceBudget = int64(opts.TraceFailures)
		if traceBudget <= 0 {
			traceBudget = 1
		}
	}
	workers := opts.workers()
	met.workers.Set(int64(workers))
	sweepStart := time.Now()
	defer func() { met.duration.Observe(time.Since(sweepStart).Seconds()) }()

	// Lower the specification once; every worker shares the immutable program
	// and realizes mutants as one-cell overlays. A nil prog selects the
	// interpreted path (forced, or state space too large to pack). The test
	// suite is likewise compiled once per sweep — expected observations,
	// symptom transitions and conflict prefixes precomputed — and the
	// immutable result shared by every worker engine, so no mutant ever
	// re-simulates the specification.
	var prog *compiled.Program
	var csuite *compiled.Suite
	if !opts.Interpreted {
		if p, err := compiled.Compile(spec); err == nil && p.Packable() {
			prog = p
			csuite = compiled.NewSuite(p, suite)
		}
	}

	if workers == 1 {
		if prog != nil {
			eng, err := compiled.EngineFor(prog)
			if err != nil {
				return res, err // unreachable: Packable checked above
			}
			eng.SetSuite(csuite)
			oracleR := prog.NewRunner()
			for _, f := range faults {
				ov, ok := prog.OverlayFor(f)
				if !ok {
					continue // mirrors fault.ForEachMutant's apply-skip
				}
				if err := ctx.Err(); err != nil {
					return res, err
				}
				met.busy.Inc()
				start := time.Now()
				report, err := diagnoseMutantCompiled(ctx, spec, suite, eng, oracleR, f, ov, opts, &traceBudget)
				met.busy.Dec()
				if err != nil {
					if ctxErr := ctx.Err(); ctxErr != nil {
						return res, ctxErr
					}
					return res, err
				}
				met.observe(report, time.Since(start))
				res.add(report)
			}
			return res, nil
		}
		err := fault.ForEachMutantOf(spec, faults, func(m fault.Mutant) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			met.busy.Inc()
			start := time.Now()
			report, err := diagnoseMutant(ctx, spec, suite, m, opts, &traceBudget)
			met.busy.Dec()
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return ctxErr
				}
				return err
			}
			met.observe(report, time.Since(start))
			res.add(report)
			return nil
		})
		return res, err
	}

	type outcome struct {
		done    bool // the job ran (diagnosed, failed, or apply-skipped)
		skipped bool // fault could not be applied; mirrors ForEachMutant's skip
		report  MutantReport
		err     error
	}
	results := make([]outcome, len(faults))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range faults {
			select {
			case jobs <- i:
			case <-wctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker engine and oracle runner over the shared program:
			// both reuse scratch buffers and must not cross goroutines. The
			// compiled suite is immutable and shared by all workers.
			var eng *compiled.Engine
			var oracleR *compiled.Runner
			if prog != nil {
				var err error
				if eng, err = compiled.EngineFor(prog); err != nil {
					eng = nil // unreachable: Packable checked at selection
				} else {
					eng.SetSuite(csuite)
					oracleR = prog.NewRunner()
				}
			}
			for idx := range jobs {
				var report MutantReport
				var err error
				if eng != nil {
					ov, ok := prog.OverlayFor(faults[idx])
					if !ok {
						// Mirrors the skip in fault.ForEachMutant; cannot
						// happen for Enumerate's output.
						results[idx] = outcome{done: true, skipped: true}
						continue
					}
					met.busy.Inc()
					start := time.Now()
					report, err = diagnoseMutantCompiled(wctx, spec, suite, eng, oracleR, faults[idx], ov, opts, &traceBudget)
					met.busy.Dec()
					results[idx] = outcome{done: true, report: report, err: err}
					if err != nil {
						cancel()
						return
					}
					met.observe(report, time.Since(start))
					continue
				}
				sys, err := faults[idx].Apply(spec)
				if err != nil {
					// Mirrors the skip in fault.ForEachMutant; cannot happen
					// for Enumerate's output.
					results[idx] = outcome{done: true, skipped: true}
					continue
				}
				m := fault.Mutant{Fault: faults[idx], System: sys}
				met.busy.Inc()
				start := time.Now()
				report, err = diagnoseMutant(wctx, spec, suite, m, opts, &traceBudget)
				met.busy.Dec()
				// Each worker writes only its own index; no lock needed.
				results[idx] = outcome{done: true, report: report, err: err}
				if err != nil {
					cancel()
					return
				}
				met.observe(report, time.Since(start))
			}
		}()
	}
	wg.Wait()

	// Deterministic merge in fault-enumeration order. Jobs are dispatched in
	// index order, so when a worker errored every lower-index job has
	// completed: the loop below reproduces exactly the serial prefix and the
	// serial first-error. On external cancellation the contiguous completed
	// prefix is merged and ctx.Err() returned.
	for i := range results {
		if !results[i].done {
			break // job never ran: external cancellation hole
		}
		if results[i].skipped {
			continue
		}
		if results[i].err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return res, ctxErr
			}
			return res, results[i].err
		}
		res.add(results[i].report)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// add folds one mutant report into the aggregate, exactly as the historical
// serial loop did.
func (res *SweepResult) add(report MutantReport) {
	if report.Outcome == OutcomeUndetected {
		if report.EquivalentToSpec {
			res.UndetectedEquivalent++
		}
	} else {
		res.Detected++
		res.TotalAdditionalTests += report.AdditionalTests
		res.TotalAdditionalInputs += report.AdditionalIn
	}
	res.Counts[report.Outcome]++
	res.Reports = append(res.Reports, report)
}

// diagnoseMutant runs the full Steps 1–6 diagnosis of one mutant against the
// specification and classifies the outcome. It is pure with respect to
// shared state — spec and suite are read-only — and therefore safe to call
// from concurrent sweep workers.
func diagnoseMutant(ctx context.Context, spec *cfsm.System, suite []cfsm.TestCase, m fault.Mutant, opts SweepOptions, traceBudget *int64) (MutantReport, error) {
	report := MutantReport{Fault: m.Fault}
	oracle := &core.SystemOracle{Sys: m.System}
	loc, err := core.DiagnoseContext(ctx, spec, suite, oracle, core.WithRegistry(opts.Registry))
	if err != nil {
		return report, fmt.Errorf("diagnose %s: %w", m.Fault.Describe(spec), err)
	}
	report.AdditionalTests = oracle.Tests - len(suite)
	report.AdditionalIn = oracle.Inputs
	classifyOutcome(loc, m.Fault, &report, opts.CheckEquivalence,
		func() bool { return testgen.SystemsEquivalent(spec, m.System) },
		func(diagnosed fault.Fault) bool { return diagnosedEquivalent(spec, diagnosed, m.System) })
	if opts.Trace != nil && report.Outcome != OutcomeUndetected && atomic.AddInt64(traceBudget, -1) >= 0 {
		traceMutant(ctx, spec, suite, m, report.Outcome, opts.Trace)
	}
	return report, nil
}

// diagnoseMutantCompiled is diagnoseMutant on the compiled substrate: the
// injected fault is realized as a table overlay on the oracle runner instead
// of a cloned system, and the analysis itself runs on the worker's compiled
// engine. Verdicts, counts and classification are byte-identical to the
// interpreted path.
func diagnoseMutantCompiled(ctx context.Context, spec *cfsm.System, suite []cfsm.TestCase, eng *compiled.Engine, oracleR *compiled.Runner, f fault.Fault, ov compiled.Overlay, opts SweepOptions, traceBudget *int64) (MutantReport, error) {
	report := MutantReport{Fault: f}
	oracleR.SetOverlay(ov)
	oracle := &compiled.Oracle{R: oracleR}
	loc, err := core.DiagnoseContext(ctx, spec, suite, oracle, core.WithRegistry(opts.Registry), core.WithEngine(eng))
	if err != nil {
		return report, fmt.Errorf("diagnose %s: %w", f.Describe(spec), err)
	}
	report.AdditionalTests = oracle.Tests - len(suite)
	report.AdditionalIn = oracle.Inputs
	classifyOutcome(loc, f, &report, opts.CheckEquivalence,
		func() bool { return eng.FaultEquivalentToSpec(f) },
		func(diagnosed fault.Fault) bool { return eng.FaultsEquivalent(diagnosed, f) })
	if opts.Trace != nil && report.Outcome != OutcomeUndetected && atomic.AddInt64(traceBudget, -1) >= 0 {
		// The traced re-run stays on the interpreted path: it needs a mutant
		// system for the oracle and is off the hot path by construction.
		if sys, err := f.Apply(spec); err == nil {
			traceMutant(ctx, spec, suite, fault.Mutant{Fault: f, System: sys}, report.Outcome, opts.Trace)
		}
	}
	return report, nil
}

// classifyOutcome folds a localization verdict into the report, with the
// equivalence predicates abstracted so the interpreted and compiled paths
// classify identically: specEquiv decides mutant ≡ specification for
// undetected mutants, diagEquiv decides diagnosed-fault ≡ injected-fault for
// wrong localizations.
func classifyOutcome(loc *core.Localization, injected fault.Fault, report *MutantReport, checkEquivalence bool, specEquiv func() bool, diagEquiv func(diagnosed fault.Fault) bool) {
	switch loc.Verdict {
	case core.VerdictNoFault:
		report.Outcome = OutcomeUndetected
		if checkEquivalence {
			report.EquivalentToSpec = specEquiv()
		}
	case core.VerdictLocalized:
		switch {
		case loc.Fault.Ref == injected.Ref:
			report.Outcome = OutcomeLocalizedCorrect
			report.ExactFault = *loc.Fault == injected
		default:
			report.Outcome = OutcomeLocalizedWrong
			if checkEquivalence && diagEquiv(*loc.Fault) {
				report.Outcome = OutcomeLocalizedEquivalent
			}
		}
	case core.VerdictAmbiguous:
		report.Outcome = OutcomeAmbiguousMissesTruth
		for _, r := range loc.Remaining {
			if r.Ref == injected.Ref {
				report.Outcome = OutcomeAmbiguousContainsTruth
				break
			}
		}
	default:
		report.Outcome = OutcomeInconsistent
	}
}

// traceMutant re-runs one detected mutant's diagnosis with structured tracing
// enabled, inside a sweep.mutant span. The diagnosis is deterministic, so the
// re-run repeats exactly the result just classified; tracing the second pass
// keeps the tracer entirely off the untraced mutants' path.
func traceMutant(ctx context.Context, spec *cfsm.System, suite []cfsm.TestCase, m fault.Mutant, out MutantOutcome, tr *trace.Tracer) {
	span := tr.Begin(trace.KindSweepMutant,
		trace.A("fault", m.Fault.Describe(spec)),
		trace.A("outcome", out.String()))
	if _, err := core.DiagnoseContext(ctx, spec, suite, &core.SystemOracle{Sys: m.System}, core.WithTrace(tr)); err != nil {
		span.End(trace.A("error", err.Error()))
		return
	}
	span.End()
}

func diagnosedEquivalent(spec *cfsm.System, diagnosed fault.Fault, mutant *cfsm.System) bool {
	sys, err := diagnosed.Apply(spec)
	if err != nil {
		return false
	}
	return testgen.SystemsEquivalent(sys, mutant)
}
