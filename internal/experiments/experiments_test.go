package experiments

import (
	"testing"

	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/testgen"
)

func TestRunTable1(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if !res.Match() {
		for _, r := range res.Rows {
			t.Errorf("%s: expected %q vs %q, observed %q vs %q",
				r.Name, r.GotExpected, r.WantExpected, r.GotObserved, r.WantObserved)
		}
	}
	if res.Rows[0].SpecTrace == "" {
		t.Error("missing spec trace")
	}
}

func TestRunWalkthrough(t *testing.T) {
	res, err := RunWalkthrough()
	if err != nil {
		t.Fatalf("RunWalkthrough: %v", err)
	}
	if got := len(res.Analysis.Diagnoses); got != 3 {
		t.Fatalf("diagnoses = %d, want 3 (Diag1–Diag3)", got)
	}
	if res.Localization.Verdict != core.VerdictLocalized {
		t.Fatalf("verdict = %v", res.Localization.Verdict)
	}
	if res.Localization.Fault.Ref != paper.FaultRef {
		t.Fatalf("fault = %+v", res.Localization.Fault)
	}
	if res.Oracle.Tests == 0 {
		t.Error("no additional tests recorded")
	}
}

func TestRunSweepPaperSuite(t *testing.T) {
	// The paper's own two-test-case suite detects only some mutants; every
	// detected one must be handled without inconsistency and the sweep on
	// the true paper fault must localize correctly.
	spec := paper.MustFigure1()
	res, err := RunSweep(spec, paper.TestSuite(), false)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if res.Counts[OutcomeInconsistent] != 0 {
		t.Errorf("inconsistent outcomes: %d", res.Counts[OutcomeInconsistent])
	}
	if res.Counts[OutcomeLocalizedWrong] != 0 {
		for _, r := range res.Reports {
			if r.Outcome == OutcomeLocalizedWrong {
				t.Errorf("wrong localization for %s", r.Fault.Describe(spec))
			}
		}
	}
	found := false
	for _, r := range res.Reports {
		if r.Fault == (paperFault()) {
			found = true
			if r.Outcome != OutcomeLocalizedCorrect {
				t.Errorf("paper fault outcome = %v", r.Outcome)
			}
		}
	}
	if !found {
		t.Error("the paper's fault was not part of the enumeration")
	}
}

func TestRunSweepTourSuite(t *testing.T) {
	// With a transition-tour initial suite the detection rate rises; the
	// soundness property stays: no detected mutant may be localized to a
	// non-equivalent wrong transition, and none may be inconsistent.
	if testing.Short() {
		t.Skip("sweep with equivalence checks is slow")
	}
	spec := paper.MustFigure1()
	suite, uncovered := testgen.Tour(spec, 0)
	if len(uncovered) != 0 {
		t.Fatalf("tour left %v uncovered", uncovered)
	}
	res, err := RunSweep(spec, suite, true)
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	t.Logf("sweep outcomes: %v (detected %d/%d, undetected-equivalent %d)",
		res.Counts, res.Detected, len(res.Reports), res.UndetectedEquivalent)
	if res.Counts[OutcomeInconsistent] != 0 {
		t.Errorf("inconsistent outcomes: %d", res.Counts[OutcomeInconsistent])
	}
	for _, r := range res.Reports {
		switch r.Outcome {
		case OutcomeLocalizedWrong:
			t.Errorf("non-equivalent wrong localization for %s", r.Fault.Describe(spec))
		case OutcomeAmbiguousMissesTruth:
			t.Errorf("ambiguity missing the true fault for %s", r.Fault.Describe(spec))
		}
	}
	if res.Detected == 0 {
		t.Fatal("tour suite detected nothing")
	}
}

func TestRunCostFigure1(t *testing.T) {
	spec := paper.MustFigure1()
	p, err := RunCost("figure1", spec, 5)
	if err != nil {
		t.Fatalf("RunCost: %v", err)
	}
	if p.ProductSt == 0 || p.ExhaustiveIn == 0 {
		t.Fatalf("degenerate cost point: %+v", p)
	}
	if p.MutantsDetected == 0 {
		t.Fatal("no mutants detected in the sample")
	}
	// The paper's economy claim: directed diagnosis must beat exhaustive
	// per-transition verification of the product machine by a wide margin.
	if p.Ratio() < 2 {
		t.Errorf("exhaustive/adaptive input ratio = %.2f, want >= 2 (point %+v)", p.Ratio(), p)
	}
}

func TestOutcomeString(t *testing.T) {
	for o := OutcomeUndetected; o <= OutcomeInconsistent; o++ {
		if got := o.String(); got == "" || got[0] == 'M' {
			t.Errorf("missing name for outcome %d: %q", int(o), got)
		}
	}
	if got := MutantOutcome(99).String(); got != "MutantOutcome(99)" {
		t.Errorf("unknown outcome = %q", got)
	}
}

func paperFault() fault.Fault {
	return fault.Fault{Ref: paper.FaultRef, Kind: fault.KindTransfer, To: "s0"}
}
