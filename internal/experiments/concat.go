package experiments

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/protocols"
)

// ConcatPoint is one row of the co-located-workload scaling experiment
// (E11): k independent protocol instances run side by side, a single fault
// is injected into one instance, and the diagnosis must localize it without
// the other instances confusing the search.
type ConcatPoint struct {
	Parts      int
	Machines   int
	Trans      int
	SuiteCases int
	Verdict    core.Verdict
	CorrectRef bool
	AddTests   int
}

// RunConcatScaling builds a system of k ABP instances plus one relay
// instance, lifts each part's functional suite, injects the ABP bit-toggle
// bug into the first instance, and diagnoses.
func RunConcatScaling(k int) (ConcatPoint, error) {
	var point ConcatPoint
	if k < 1 {
		return point, fmt.Errorf("k must be >= 1")
	}
	parts := make(map[string]*cfsm.System, k+1)
	abp := protocols.MustABP()
	for i := 0; i < k; i++ {
		parts[fmt.Sprintf("abp%02d", i)] = abp
	}
	parts["relay"] = protocols.MustRelay()
	sys, err := cfsm.Concat(parts)
	if err != nil {
		return point, err
	}
	point.Parts = k + 1
	point.Machines = sys.N()
	point.Trans = sys.NumTransitions()

	// Lift each part's functional suite. Part order is the sorted prefix
	// order used by Concat: abp00 < abp01 < ... < relay.
	var suite []cfsm.TestCase
	offset := 0
	for i := 0; i < k; i++ {
		prefix := fmt.Sprintf("abp%02d", i)
		for _, tc := range protocols.ABPSuite() {
			suite = append(suite, cfsm.LiftTestCase(tc, prefix, offset))
		}
		offset += abp.N()
	}
	for _, tc := range protocols.RelaySuite() {
		suite = append(suite, cfsm.LiftTestCase(tc, "relay", offset))
	}
	point.SuiteCases = len(suite)

	// The classic bit-toggle bug in the first ABP instance's sender.
	bug := fault.Fault{
		Ref:  cfsm.Ref{Machine: 0, Name: "abp00.ack0"},
		Kind: fault.KindTransfer,
		To:   "r0",
	}
	iut, err := bug.Apply(sys)
	if err != nil {
		return point, err
	}
	oracle := &core.SystemOracle{Sys: iut}
	loc, err := core.Diagnose(sys, suite, oracle)
	if err != nil {
		return point, err
	}
	point.Verdict = loc.Verdict
	point.AddTests = oracle.Tests - len(suite)
	if loc.Verdict == core.VerdictLocalized {
		point.CorrectRef = loc.Fault.Ref == bug.Ref
	}
	return point, nil
}
