package experiments

import (
	"fmt"
	"sync"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/ports"
	"cfsmdiag/internal/testgen"
)

// DistObsRow records one mutant's global-vs-distributed comparison in the
// E18 experiment.
type DistObsRow struct {
	Fault string
	// GlobalDiagnoses and LocalDiagnoses are the candidate-set sizes after
	// Steps 1–5 under global and per-machine observation.
	GlobalDiagnoses int
	LocalDiagnoses  int
	// GlobalVerdict and LocalVerdict are the Step 6 outcomes.
	GlobalVerdict string
	LocalVerdict  string
	// GlobalTests and LocalTests count oracle executions end to end.
	GlobalTests int
	LocalTests  int
	// Recovered reports that Step 6 still reached a sound localized verdict
	// under distributed observation although Steps 1–5 left a strictly larger
	// candidate set: the adaptive tests were projection-distinguishing.
	Recovered bool
}

// DistObsResult aggregates the E18 distributed-observation experiment on one
// system: every single-transition mutant is diagnosed twice, once from the
// global observation sequence and once from per-machine local projections
// only, and the localization cost and candidate precision are compared.
type DistObsResult struct {
	System  string
	Mutants int
	// Detected counts mutants whose suite run produced a symptom under global
	// observation (the comparison is defined on these).
	Detected int
	// Enlarged counts detected mutants whose Steps 1–5 candidate set is
	// strictly larger under per-machine observation — global order that the
	// diagnosis was actually using.
	Enlarged int
	// Recovered counts enlarged mutants where adaptive Step 6 nevertheless
	// converged to a sound localized verdict from projections alone.
	Recovered int
	// Degraded counts detected mutants where the distributed verdict is
	// weaker than the global one (localized → ambiguous/inconclusive).
	Degraded int
	// LocallyAmbiguous totals candidates reported as distinguishable only
	// under global observation.
	LocallyAmbiguous int
	// WrongConvictions counts distributed runs convicting a transition that
	// is locally distinguishable from the true mutant — the soundness
	// property demands zero.
	WrongConvictions int
	// GlobalTests and LocalTests total the oracle executions of both modes.
	GlobalTests int
	LocalTests  int
	// Examples lists the first few enlarged cases for the report.
	Examples []DistObsRow
}

// DistObsOptions tunes RunDistObs.
type DistObsOptions struct {
	// Workers is the number of goroutines diagnosing mutants concurrently
	// (0 = serial). Each worker owns its mutant systems; the specification
	// and suite are shared read-only.
	Workers int
	// MaxExamples bounds the Examples list (0 = 5).
	MaxExamples int
}

// RunDistObs runs experiment E18 on one system: for every single-transition
// mutant, diagnose once from the global observation sequence and once from
// per-machine local projections (the finest port map), then compare
// candidate-set sizes, verdicts and oracle cost. A distributed conviction of
// a transition that some projection could still tell apart from the truth is
// counted in WrongConvictions; the pipeline's guarantee is that this never
// happens — ambiguity degrades to the inconclusive taxonomy instead.
func RunDistObs(name string, spec *cfsm.System, suite []cfsm.TestCase, opts DistObsOptions) (DistObsResult, error) {
	res := DistObsResult{System: name}
	maxExamples := opts.MaxExamples
	if maxExamples <= 0 {
		maxExamples = 5
	}
	portOf := make([]string, spec.N())
	for i := range portOf {
		portOf[i] = fmt.Sprintf("site-%02d", i)
	}
	pm, err := ports.New(spec, portOf)
	if err != nil {
		return res, err
	}
	faults := fault.Enumerate(spec)
	res.Mutants = len(faults)

	rows := make([]*DistObsRow, len(faults))
	errs := make([]error, len(faults))
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rows[i], errs[i] = distObsOne(spec, suite, pm, faults[i])
			}
		}()
	}
	for i := range faults {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("%s: %w", faults[i].Describe(spec), err)
		}
	}
	for _, row := range rows {
		if row == nil {
			continue // undetected: no symptom to compare
		}
		res.Detected++
		res.GlobalTests += row.GlobalTests
		res.LocalTests += row.LocalTests
		if row.LocalDiagnoses > row.GlobalDiagnoses {
			res.Enlarged++
			if row.Recovered {
				res.Recovered++
			}
			if len(res.Examples) < maxExamples {
				res.Examples = append(res.Examples, *row)
			}
		}
		if row.LocalVerdict == "wrong" {
			res.WrongConvictions++
		}
		if row.GlobalVerdict == core.VerdictLocalized.String() && row.LocalVerdict != core.VerdictLocalized.String() {
			res.Degraded++
		}
	}
	return res, nil
}

// distObsOne compares the two observation modes on one mutant. It returns
// nil when the suite produces no symptom (nothing to diagnose in either
// mode).
func distObsOne(spec *cfsm.System, suite []cfsm.TestCase, pm ports.Map, f fault.Fault) (*DistObsRow, error) {
	mut, err := f.Apply(spec)
	if err != nil {
		return nil, err
	}
	observed, err := mut.RunSuite(suite)
	if err != nil {
		return nil, err
	}

	// Global observation: the classical pipeline.
	ag, err := core.Analyze(spec, suite, observed)
	if err != nil {
		return nil, err
	}
	if len(ag.Symptoms) == 0 {
		return nil, nil
	}
	gOracle := &core.SystemOracle{Sys: mut}
	locG, err := core.Localize(ag, gOracle)
	if err != nil {
		return nil, err
	}

	// Distributed observation: same recorded run, projections only.
	al, _, err := ports.AnalyzeObserved(spec, suite, observed, pm)
	if err != nil {
		return nil, err
	}
	lOracle := &core.SystemOracle{Sys: mut}
	locL, _, err := ports.Localize(al, lOracle, pm)
	if err != nil {
		return nil, err
	}

	row := &DistObsRow{
		Fault:           f.Describe(spec),
		GlobalDiagnoses: len(ag.Diagnoses),
		LocalDiagnoses:  len(al.Diagnoses),
		GlobalVerdict:   locG.Verdict.String(),
		LocalVerdict:    locL.Verdict.String(),
		GlobalTests:     gOracle.Tests,
		LocalTests:      lOracle.Tests,
	}
	if locL.Verdict == core.VerdictLocalized {
		sound := locL.Fault.Ref == f.Ref
		if !sound {
			// A differing conviction is sound only when no projection can
			// separate the convicted variant from the true mutant.
			convicted, err := locL.Fault.Apply(spec)
			if err != nil {
				return nil, err
			}
			_, distinguishable, _ := testgen.ProjectionDistinguish(
				testgen.Variant{Sys: convicted, Cfg: convicted.InitialConfig()},
				testgen.Variant{Sys: mut, Cfg: mut.InitialConfig()},
				nil)
			sound = !distinguishable
		}
		if sound {
			row.Recovered = true
		} else {
			row.LocalVerdict = "wrong"
		}
	}
	return row, nil
}
