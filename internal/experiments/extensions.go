package experiments

import (
	"fmt"
	"math/rand"

	"cfsmdiag/internal/async"
	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/multifault"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/testgen"
)

// AddressSweepResult aggregates the addressing-fault sweep (experiment E7,
// exercising the paper's future-work fault-model extension).
type AddressSweepResult struct {
	Mutants    int
	Undetected int
	Correct    int // localized (or ambiguous-containing) on the right transition
	Wrong      int
}

// RunAddressSweep injects every valid addressing fault into the Figure 1
// system, diagnoses each mutant with the verification suite, and classifies
// the outcomes.
func RunAddressSweep(spec *cfsm.System, suite []cfsm.TestCase) (AddressSweepResult, error) {
	var res AddressSweepResult
	for _, m := range fault.AddressMutants(spec) {
		res.Mutants++
		oracle := &core.SystemOracle{Sys: m.System}
		loc, err := core.Diagnose(spec, suite, oracle)
		if err != nil {
			return res, fmt.Errorf("diagnose %s: %w", m.Fault.Describe(spec), err)
		}
		switch loc.Verdict {
		case core.VerdictNoFault:
			res.Undetected++
		case core.VerdictLocalized:
			if loc.Fault.Ref == m.Fault.Ref {
				res.Correct++
			} else {
				res.Wrong++
			}
		case core.VerdictAmbiguous:
			found := false
			for _, r := range loc.Remaining {
				if r.Ref == m.Fault.Ref {
					found = true
				}
			}
			if found {
				res.Correct++
			} else {
				res.Wrong++
			}
		default:
			res.Wrong++
		}
	}
	return res, nil
}

// DoubleFaultDemoResult is the outcome of the double-fault demonstration
// (experiment E8).
type DoubleFaultDemoResult struct {
	Injected  string
	Verdict   core.Verdict
	Localized string
	Tests     int
}

// RunDoubleFaultDemo injects a pair of faults into the Figure 1 system and
// runs the at-most-two-faults diagnosis.
func RunDoubleFaultDemo() (DoubleFaultDemoResult, error) {
	spec := paper.MustFigure1()
	f1 := fault.Fault{Ref: paper.Ref("M1", "t7"), Kind: fault.KindOutput, Output: "c'"}
	f2 := fault.Fault{Ref: paper.Ref("M2", "t'4"), Kind: fault.KindOutput, Output: "a"}
	h := multifault.Hypothesis{Faults: []fault.Fault{f1, f2}}
	iut, err := h.Apply(spec)
	if err != nil {
		return DoubleFaultDemoResult{}, err
	}
	suite, _ := testgen.VerificationSuite(spec)
	oracle := &core.SystemOracle{Sys: iut}
	loc, err := multifault.Diagnose(spec, suite, oracle, multifault.Options{})
	if err != nil {
		return DoubleFaultDemoResult{}, err
	}
	res := DoubleFaultDemoResult{
		Injected: h.Describe(spec),
		Verdict:  loc.Verdict,
		Tests:    oracle.Tests,
	}
	if loc.Localized != nil {
		res.Localized = loc.Localized.Describe(spec)
	}
	return res, nil
}

// AsyncDemoResult is the outcome of the nondeterministic demonstration
// (experiment E9).
type AsyncDemoResult struct {
	SpecOutcomes int // possible outcomes of the racing script under the spec
	Detected     bool
	Verdict      core.Verdict
	Localized    string
	Probes       int
}

// RunAsyncDemo exercises the unsynchronized-ports extension on the paper's
// fault: a racing script plus a port-local script detect the fault, and
// single-port probes localize it.
func RunAsyncDemo() (AsyncDemoResult, error) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		return AsyncDemoResult{}, err
	}
	racing := async.Script{Inputs: [][]cfsm.Symbol{{"c"}, {"d'"}, {"c'", "v", "v"}}}
	set, _, err := async.Outcomes(spec, racing)
	if err != nil {
		return AsyncDemoResult{}, err
	}
	scripts := []async.Script{racing}
	oracle := &async.RandomOracle{Sys: iut, Rng: rand.New(rand.NewSource(1))}
	loc, err := async.Diagnose(spec, scripts, oracle)
	if err != nil {
		return AsyncDemoResult{}, err
	}
	res := AsyncDemoResult{
		SpecOutcomes: len(set),
		Detected:     loc.Analysis.Detected,
		Verdict:      loc.Verdict,
		Probes:       len(loc.Probes),
	}
	if loc.Localized != nil {
		res.Localized = loc.Localized.Describe(spec)
	}
	return res, nil
}
