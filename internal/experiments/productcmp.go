package experiments

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/singlefsm"
)

// ProductComparison quantifies the paper's motivation for diagnosing the
// CFSM model directly instead of "transform[ing] a set of CFSMs into an
// equivalent single machine with an exponential algorithm": for the same
// scenario (the paper's suite and fault), it compares the size of the
// representations and of the candidate sets the two routes produce.
type ProductComparison struct {
	// Representation sizes.
	SystemStates int // sum of per-machine states
	SystemTrans  int
	ProductSt    int
	ProductTr    int

	// Candidate sets after Steps 3–5A on the same observations.
	CFSMCandidates    int // total ITC size across machines
	ProductCandidates int // conflict-set intersection on the product machine

	// Diagnoses emitted by each route.
	CFSMDiagnoses    int
	ProductDiagnoses int
}

// RunProductComparison executes the paper's scenario along both routes.
func RunProductComparison() (ProductComparison, error) {
	var cmpRes ProductComparison
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		return cmpRes, err
	}
	suite := paper.TestSuite()

	for i := 0; i < spec.N(); i++ {
		cmpRes.SystemStates += len(spec.Machine(i).States())
	}
	cmpRes.SystemTrans = spec.NumTransitions()

	// Route 1: the CFSM-direct algorithm.
	observed, err := iut.RunSuite(suite)
	if err != nil {
		return cmpRes, err
	}
	a, err := core.Analyze(spec, suite, observed)
	if err != nil {
		return cmpRes, err
	}
	for m := 0; m < spec.N(); m++ {
		cmpRes.CFSMCandidates += len(a.ITC[m])
	}
	cmpRes.CFSMDiagnoses = len(a.Diagnoses)

	// Route 2: compose the product and run the single-FSM predecessor
	// algorithm on the encoded suite.
	prodSpec, err := spec.Product(true)
	if err != nil {
		return cmpRes, err
	}
	cmpRes.ProductSt = len(prodSpec.States())
	cmpRes.ProductTr = prodSpec.NumTransitions()

	var encSuite [][]cfsm.Symbol
	var encObserved [][]cfsm.Symbol
	for i, tc := range suite {
		encSuite = append(encSuite, cfsm.EncodeTestCase(tc))
		encObserved = append(encObserved, cfsm.EncodeObservations(observed[i]))
	}
	pa, err := singlefsm.Analyze(prodSpec, encSuite, encObserved)
	if err != nil {
		return cmpRes, err
	}
	cmpRes.ProductCandidates = len(pa.Candidates)
	cmpRes.ProductDiagnoses = len(pa.Diagnoses)
	return cmpRes, nil
}

// Report renders the comparison.
func (c ProductComparison) Report() string {
	return fmt.Sprintf(
		"representation: CFSM %d states / %d transitions vs product %d states / %d transitions\n"+
			"candidates:     CFSM %d (per-machine ITC) vs product %d (global transitions)\n"+
			"diagnoses:      CFSM %d vs product %d\n",
		c.SystemStates, c.SystemTrans, c.ProductSt, c.ProductTr,
		c.CFSMCandidates, c.ProductCandidates,
		c.CFSMDiagnoses, c.ProductDiagnoses)
}
