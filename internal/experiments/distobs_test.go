package experiments

import (
	"testing"

	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/randgen"
	"cfsmdiag/internal/testgen"
)

// TestRunDistObsFigure1 pins the E18 phenomenon on the paper's system: losing
// global order strictly enlarges the Steps 1–5 candidate set for some
// mutants, Step 6 recovers soundly via projection-distinguishing tests, and
// no mutant is ever convicted wrongly.
func TestRunDistObsFigure1(t *testing.T) {
	res, err := RunDistObs("figure1", paper.MustFigure1(), paper.TestSuite(), DistObsOptions{})
	if err != nil {
		t.Fatalf("RunDistObs: %v", err)
	}
	if res.WrongConvictions != 0 {
		t.Fatalf("wrong convictions = %d, want 0", res.WrongConvictions)
	}
	if res.Enlarged == 0 {
		t.Fatalf("no mutant's candidate set was enlarged by distributed observation; result = %+v", res)
	}
	if res.Recovered == 0 {
		t.Errorf("Step 6 recovered no enlarged case; result = %+v", res)
	}
	if res.Detected == 0 || res.Mutants == 0 {
		t.Fatalf("empty sweep: %+v", res)
	}
	if len(res.Examples) == 0 {
		t.Errorf("no examples recorded")
	}
	for _, ex := range res.Examples {
		if ex.LocalDiagnoses <= ex.GlobalDiagnoses {
			t.Errorf("example %s not enlarged: global %d local %d", ex.Fault, ex.GlobalDiagnoses, ex.LocalDiagnoses)
		}
	}
}

// TestRunDistObsParallel runs the sweep with concurrent workers — the -race
// coverage of the port-aware analysis inside a parallel sweep — and checks
// that the parallel result matches the serial one.
func TestRunDistObsParallel(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	serial, err := RunDistObs("figure1", spec, suite, DistObsOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, err := RunDistObs("figure1", spec, suite, DistObsOptions{Workers: 4})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial.Enlarged != par.Enlarged || serial.Detected != par.Detected ||
		serial.WrongConvictions != par.WrongConvictions ||
		serial.GlobalTests != par.GlobalTests || serial.LocalTests != par.LocalTests {
		t.Errorf("parallel result differs from serial:\nserial   %+v\nparallel %+v", serial, par)
	}
}

// TestRunDistObsRandom checks soundness on a generated system.
func TestRunDistObsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := randgen.DefaultConfig()
	cfg.Seed = 1
	sys, err := randgen.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	suite, _ := testgen.Tour(sys, 0)
	res, err := RunDistObs("rand-1", sys, suite, DistObsOptions{Workers: 4})
	if err != nil {
		t.Fatalf("RunDistObs: %v", err)
	}
	if res.WrongConvictions != 0 {
		t.Fatalf("wrong convictions = %d, want 0", res.WrongConvictions)
	}
}
