// Package replay turns a recorded diagnosis trace into an offline,
// reproducible re-run of the localization.
//
// A trace recorded with Record (header: specification snapshot, suite,
// observed outputs) plus the localize.test events that core.Localize emits
// under core.WithTrace contains everything Step 6 learned from the live
// implementation.  Load reconstructs that material and Run.Localize re-runs
// Analyze + Localize with a CannedOracle that answers every diagnostic test
// from the recording — no live oracle, no implementation, and a guaranteed
// error if the replayed localization ever asks a question the original run
// did not ask.  Because the algorithm is deterministic, the replay must
// reproduce the identical Localization; Check verifies it against the
// recorded verdict.
package replay

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/trace"
)

// Record emits the replay header into tr: the specification snapshot
// (run.spec), every suite case with its inputs (run.case) and the IUT's
// observed outputs per case (run.observed).  Call it before core.Analyze so
// the header precedes the analysis events in the trace.
func Record(tr *trace.Tracer, spec *cfsm.System, suite []cfsm.TestCase, observed [][]cfsm.Observation) error {
	if !tr.Enabled() {
		return nil
	}
	if len(observed) != len(suite) {
		return fmt.Errorf("replay: %d observation sequences for %d test cases", len(observed), len(suite))
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("replay: marshal specification: %w", err)
	}
	tr.Emit(trace.KindRunSpec, trace.A("system", string(data)))
	for i, tc := range suite {
		tr.Emit(trace.KindRunCase,
			trace.A("index", strconv.Itoa(i)),
			trace.A("name", tc.Name),
			trace.A("inputs", cfsm.FormatInputs(tc.Inputs)))
	}
	for i := range observed {
		tr.Emit(trace.KindRunObserved,
			trace.A("index", strconv.Itoa(i)),
			trace.A("outputs", cfsm.FormatObs(observed[i])))
	}
	return nil
}

// Run is the material reconstructed from a recorded trace.
type Run struct {
	Spec     *cfsm.System
	Suite    []cfsm.TestCase
	Observed [][]cfsm.Observation
	// Answers maps a formatted input sequence (cfsm.FormatInputs) to the
	// outputs the live oracle produced for it, from localize.test events.
	Answers map[string][]cfsm.Observation
	// Unreliable holds the input sequences whose recorded execution never
	// produced a trustworthy observation (localize.test events flagged
	// unreliable); the canned oracle re-answers them with
	// core.ErrUnreliableObservation so an inconclusive run replays to the
	// same inconclusive verdict.
	Unreliable map[string]bool
	// Verdict and Fault record the original run's outcome (localize.verdict),
	// for cross-checking the replay; Fault is empty unless localized.
	Verdict string
	Fault   string
	// Rounds counts the recorded localize.round spans.
	Rounds int
}

// Load reconstructs a Run from trace events.  The trace must contain the
// Record header; localization events are optional (a no-fault run has none).
func Load(events []trace.Event) (*Run, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("replay: trace contains no events: %w", trace.ErrTruncatedTrace)
	}
	r := &Run{Answers: make(map[string][]cfsm.Observation), Unreliable: make(map[string]bool)}
	type indexed struct {
		index int
		tc    cfsm.TestCase
	}
	var cases []indexed
	obsByIndex := make(map[int][]cfsm.Observation)
	for _, e := range events {
		switch e.Kind {
		case trace.KindRunSpec:
			if r.Spec != nil {
				return nil, fmt.Errorf("replay: duplicate %s event", trace.KindRunSpec)
			}
			sys, err := cfsm.ParseSystem([]byte(e.Attrs["system"]))
			if err != nil {
				return nil, fmt.Errorf("replay: parse recorded specification: %w", err)
			}
			r.Spec = sys
		case trace.KindRunCase:
			idx, err := strconv.Atoi(e.Attrs["index"])
			if err != nil {
				return nil, fmt.Errorf("replay: %s event with index %q", e.Kind, e.Attrs["index"])
			}
			inputs, err := parseInputs(e.Attrs["inputs"])
			if err != nil {
				return nil, fmt.Errorf("replay: case %d: %w", idx, err)
			}
			cases = append(cases, indexed{index: idx, tc: cfsm.TestCase{Name: e.Attrs["name"], Inputs: inputs}})
		case trace.KindRunObserved:
			idx, err := strconv.Atoi(e.Attrs["index"])
			if err != nil {
				return nil, fmt.Errorf("replay: %s event with index %q", e.Kind, e.Attrs["index"])
			}
			obs, err := parseObservations(e.Attrs["outputs"])
			if err != nil {
				return nil, fmt.Errorf("replay: observed outputs of case %d: %w", idx, err)
			}
			obsByIndex[idx] = obs
		case trace.KindTest:
			if e.Attrs["unreliable"] == "true" {
				r.Unreliable[e.Attrs["inputs"]] = true
				continue
			}
			obs, err := parseObservations(e.Attrs["observed"])
			if err != nil {
				return nil, fmt.Errorf("replay: recorded answer for %q: %w", e.Attrs["inputs"], err)
			}
			r.Answers[e.Attrs["inputs"]] = obs
		case trace.KindVerdict:
			r.Verdict = e.Attrs["verdict"]
			r.Fault = e.Attrs["fault"]
		case trace.KindRound:
			if e.Phase == trace.PhaseBegin {
				r.Rounds++
			}
		}
	}
	if r.Spec == nil {
		return nil, fmt.Errorf("replay: trace has no %s header event — %w, or recorded without replay.Record", trace.KindRunSpec, trace.ErrTruncatedTrace)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].index < cases[j].index })
	for pos, c := range cases {
		if c.index != pos {
			return nil, fmt.Errorf("replay: suite case indices are not contiguous (missing %d)", pos)
		}
		obs, ok := obsByIndex[c.index]
		if !ok {
			return nil, fmt.Errorf("replay: no observed outputs recorded for case %d (%s)", c.index, c.tc.Name)
		}
		r.Suite = append(r.Suite, c.tc)
		r.Observed = append(r.Observed, obs)
	}
	if len(r.Suite) == 0 {
		return nil, fmt.Errorf("replay: trace records no test-suite cases: %w", trace.ErrTruncatedTrace)
	}
	return r, nil
}

// CannedOracle answers diagnostic tests from a recording.  It is backed by
// no system at all, so a localization driven by it performs zero live test
// executions; an unrecorded query is an error, never a silent fallback.
type CannedOracle struct {
	answers    map[string][]cfsm.Observation
	unreliable map[string]bool
	// Queries counts Execute calls (all answered from the recording).
	Queries int
}

var _ core.Oracle = (*CannedOracle)(nil)

// Execute implements core.Oracle from the recorded answers.  A query the
// original run recorded as unreliable is re-answered with
// core.ErrUnreliableObservation, reproducing the inconclusive outcome.
func (o *CannedOracle) Execute(tc cfsm.TestCase) ([]cfsm.Observation, error) {
	o.Queries++
	key := cfsm.FormatInputs(tc.Inputs)
	if o.unreliable[key] {
		return nil, fmt.Errorf("replay: test %q was recorded as unreliable: %w", key, core.ErrUnreliableObservation)
	}
	obs, ok := o.answers[key]
	if !ok {
		return nil, fmt.Errorf("replay: test %q was not recorded; the replayed localization diverged from the original run", key)
	}
	return obs, nil
}

// Localize re-runs Steps 1–6 offline from the recorded material and returns
// the resulting localization together with the canned oracle that served it.
func (r *Run) Localize(opts ...core.Option) (*core.Localization, *CannedOracle, error) {
	a, err := core.Analyze(r.Spec, r.Suite, r.Observed, opts...)
	if err != nil {
		return nil, nil, err
	}
	oracle := &CannedOracle{answers: r.Answers, unreliable: r.Unreliable}
	loc, err := core.Localize(a, oracle, opts...)
	if err != nil {
		return nil, nil, err
	}
	return loc, oracle, nil
}

// Check verifies a replayed localization against the recorded outcome.
func (r *Run) Check(loc *core.Localization) error {
	if r.Verdict == "" {
		return fmt.Errorf("replay: trace records no localize.verdict event to check against: %w", trace.ErrTruncatedTrace)
	}
	if got := loc.Verdict.String(); got != r.Verdict {
		return fmt.Errorf("replay: verdict %q does not reproduce recorded %q", got, r.Verdict)
	}
	got := ""
	if loc.Fault != nil {
		got = loc.Fault.Describe(loc.Analysis.Spec)
	}
	if got != r.Fault {
		return fmt.Errorf("replay: fault %q does not reproduce recorded %q", got, r.Fault)
	}
	return nil
}

// parseInputs inverts cfsm.FormatInputs.
func parseInputs(s string) ([]cfsm.Input, error) {
	toks := splitTokens(s)
	out := make([]cfsm.Input, 0, len(toks))
	for _, tok := range toks {
		in, err := cfsm.ParseInputToken(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// parseObservations inverts cfsm.FormatObs.
func parseObservations(s string) ([]cfsm.Observation, error) {
	toks := splitTokens(s)
	out := make([]cfsm.Observation, 0, len(toks))
	for _, tok := range toks {
		o, err := cfsm.ParseObservationToken(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

func splitTokens(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
