package replay_test

import (
	"bytes"
	"strings"
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/replay"
	"cfsmdiag/internal/trace"
)

// recordFigure1 performs the live Figure 1 / t″4 diagnosis with tracing on
// and returns the original localization plus the recorded trace.
func recordFigure1(t *testing.T) (*core.Localization, *trace.Tracer) {
	t.Helper()
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatal(err)
	}
	suite := paper.TestSuite()

	observed := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		obs, err := iut.Run(tc)
		if err != nil {
			t.Fatal(err)
		}
		observed[i] = obs
	}

	tr := trace.New()
	if err := replay.Record(tr, spec, suite, observed); err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(spec, suite, observed, core.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.Localize(a, &core.SystemOracle{Sys: iut}, core.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	return loc, tr
}

// TestReplayReproducesFigure1Localization is the acceptance criterion:
// replaying a trace recorded from the Figure 1 t″4 run reproduces the
// identical Localization — same convicted transition, same diagnoses, same
// round count — with zero live oracle calls.
func TestReplayReproducesFigure1Localization(t *testing.T) {
	loc, tr := recordFigure1(t)

	// Round-trip the trace through the JSONL exporter, as the CLI does.
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("recorded trace does not validate: %v", err)
	}
	events, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	run, err := replay.Load(events)
	if err != nil {
		t.Fatal(err)
	}
	rtr := trace.New()
	rloc, oracle, err := run.Localize(core.WithTrace(rtr))
	if err != nil {
		t.Fatal(err)
	}

	// Same verdict and convicted transition.
	if rloc.Verdict != loc.Verdict {
		t.Fatalf("replayed verdict %v, original %v", rloc.Verdict, loc.Verdict)
	}
	if rloc.Fault == nil || rloc.Fault.Ref != paper.FaultRef {
		t.Fatalf("replayed fault %+v, want conviction of %v", rloc.Fault, paper.FaultRef)
	}
	if got, want := rloc.Fault.Describe(run.Spec), loc.Fault.Describe(loc.Analysis.Spec); got != want {
		t.Fatalf("replayed fault %q, original %q", got, want)
	}

	// Same diagnoses, in the same order.
	if len(rloc.Analysis.Diagnoses) != len(loc.Analysis.Diagnoses) {
		t.Fatalf("replayed %d diagnoses, original %d", len(rloc.Analysis.Diagnoses), len(loc.Analysis.Diagnoses))
	}
	for i := range loc.Analysis.Diagnoses {
		got := rloc.Analysis.Diagnoses[i].Describe(run.Spec)
		want := loc.Analysis.Diagnoses[i].Describe(loc.Analysis.Spec)
		if got != want {
			t.Fatalf("diagnosis %d: replayed %q, original %q", i+1, got, want)
		}
	}

	// Same cleared candidates and additional tests.
	if len(rloc.Cleared) != len(loc.Cleared) {
		t.Fatalf("replayed %d cleared, original %d", len(rloc.Cleared), len(loc.Cleared))
	}
	for i := range loc.Cleared {
		if rloc.Cleared[i] != loc.Cleared[i] {
			t.Fatalf("cleared %d: replayed %v, original %v", i, rloc.Cleared[i], loc.Cleared[i])
		}
	}
	if len(rloc.AdditionalTests) != len(loc.AdditionalTests) {
		t.Fatalf("replayed %d additional tests, original %d", len(rloc.AdditionalTests), len(loc.AdditionalTests))
	}
	for i := range loc.AdditionalTests {
		got := cfsm.FormatInputs(rloc.AdditionalTests[i].Test.Inputs)
		want := cfsm.FormatInputs(loc.AdditionalTests[i].Test.Inputs)
		if got != want {
			t.Fatalf("additional test %d: replayed %q, original %q", i+1, got, want)
		}
		if !cfsm.ObsEqual(rloc.AdditionalTests[i].Observed, loc.AdditionalTests[i].Observed) {
			t.Fatalf("additional test %d: observations differ", i+1)
		}
	}

	// Same round count, comparing recorded vs replayed traces.
	origRounds := trace.CountKind(tr.Events(), trace.KindRound, trace.PhaseBegin)
	replayRounds := trace.CountKind(rtr.Events(), trace.KindRound, trace.PhaseBegin)
	if origRounds == 0 || origRounds != replayRounds {
		t.Fatalf("round count: original %d, replayed %d", origRounds, replayRounds)
	}
	if run.Rounds != origRounds {
		t.Fatalf("Load counted %d rounds, trace has %d", run.Rounds, origRounds)
	}

	// Zero live oracle calls: every query was served from the recording.
	if oracle.Queries != len(loc.AdditionalTests) {
		t.Fatalf("canned oracle served %d queries, original run executed %d tests",
			oracle.Queries, len(loc.AdditionalTests))
	}

	// The recorded verdict cross-check passes.
	if err := run.Check(rloc); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCannedOracleRejectsUnrecordedQuery(t *testing.T) {
	canned := &replay.CannedOracle{}
	_, err := canned.Execute(cfsm.TestCase{Inputs: []cfsm.Input{cfsm.Reset()}})
	if err == nil || !strings.Contains(err.Error(), "was not recorded") {
		t.Fatalf("unrecorded query error = %v", err)
	}
}

func TestLoadRejectsHeaderlessTrace(t *testing.T) {
	tr := trace.New()
	tr.Emit(trace.KindSymptom)
	if _, err := replay.Load(tr.Events()); err == nil || !strings.Contains(err.Error(), "no run.spec") {
		t.Fatalf("Load error = %v", err)
	}
}

// unreliableOracle fails every query with the unreliable-observation
// sentinel, the way the resilient retry layer does when retries and votes
// are exhausted.
type unreliableOracle struct{}

func (unreliableOracle) Execute(cfsm.TestCase) ([]cfsm.Observation, error) {
	return nil, core.ErrUnreliableObservation
}

// TestReplayReproducesInconclusiveRun round-trips a run in which no
// diagnostic test ever produced a trustworthy observation: the trace marks
// every test unreliable, and the replay's canned oracle re-answers them with
// the same sentinel, reproducing the inconclusive verdict instead of
// reporting a bogus divergence.
func TestReplayReproducesInconclusiveRun(t *testing.T) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatal(err)
	}
	suite := paper.TestSuite()
	observed := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		if observed[i], err = iut.Run(tc); err != nil {
			t.Fatal(err)
		}
	}
	tr := trace.New()
	if err := replay.Record(tr, spec, suite, observed); err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(spec, suite, observed, core.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.Localize(a, unreliableOracle{}, core.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Verdict != core.VerdictInconclusive {
		t.Fatalf("verdict = %v, want inconclusive (every query unreliable)", loc.Verdict)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("inconclusive trace fails validation: %v", err)
	}
	events, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := replay.Load(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Unreliable) == 0 {
		t.Fatal("recorded run has no unreliable tests")
	}
	replayed, canned, err := rec.Localize()
	if err != nil {
		t.Fatalf("replayed localization: %v", err)
	}
	if canned.Queries == 0 {
		t.Error("replay answered no queries")
	}
	if replayed.Verdict != core.VerdictInconclusive {
		t.Fatalf("replayed verdict = %v, want inconclusive", replayed.Verdict)
	}
	if err := rec.Check(replayed); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !strings.Contains(replayed.Report(), "inconclusive") {
		t.Errorf("replayed report does not mention the inconclusive candidates")
	}
}
