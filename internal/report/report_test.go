package report

import (
	"strings"
	"testing"

	"cfsmdiag/internal/core"
	"cfsmdiag/internal/paper"
)

func paperLocalization(t *testing.T) *core.Localization {
	t.Helper()
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatalf("FaultyImplementation: %v", err)
	}
	loc, err := core.Diagnose(spec, paper.TestSuite(), &core.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	return loc
}

func TestMarkdownPaperSession(t *testing.T) {
	loc := paperLocalization(t)
	md, err := Markdown(loc)
	if err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	for _, want := range []string{
		"# CFSM diagnosis report",
		"**Verdict:** fault localized",
		`**Fault:** M3.t"4 transfers to s0 instead of s1`,
		"## Test results",
		"| tc1 |",
		"step 6",
		"## Candidate generation (Steps 3–5)",
		"Diag1: M1.t7 outputs c' instead of d'",
		"## Additional diagnostic tests (Step 6)",
		"R, c^1, b^1",
		"- cleared: M1.t7",
		"```mermaid",
		"sequenceDiagram",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestMarkdownNoFault(t *testing.T) {
	spec := paper.MustFigure1()
	loc, err := core.Diagnose(spec, paper.TestSuite(), &core.SystemOracle{Sys: spec})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	md, err := Markdown(loc)
	if err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	if !strings.Contains(md, "**Verdict:** no fault detected") {
		t.Errorf("report missing no-fault verdict:\n%s", md[:200])
	}
	if strings.Contains(md, "## Additional diagnostic tests") {
		t.Error("no-fault report should have no additional-test section")
	}
}
