// Package report renders a complete diagnosis session as a Markdown
// document: the verdict, the test results with symptoms highlighted, the
// candidate-generation walkthrough, the adaptively generated additional
// tests, and a Mermaid sequence diagram of the convicting test. The CLI's
// diagnose -report flag emits it for humans and dashboards.
package report

import (
	"fmt"
	"strings"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
)

// Markdown renders the diagnosis session.
func Markdown(loc *core.Localization) (string, error) {
	a := loc.Analysis
	var b strings.Builder

	b.WriteString("# CFSM diagnosis report\n\n")
	fmt.Fprintf(&b, "**Verdict:** %s\n\n", loc.Verdict)
	if loc.Fault != nil {
		fmt.Fprintf(&b, "**Fault:** %s\n\n", loc.Fault.Describe(a.Spec))
	}
	for _, f := range loc.Remaining {
		fmt.Fprintf(&b, "- remaining hypothesis: %s\n", f.Describe(a.Spec))
	}
	if len(loc.Remaining) > 0 {
		b.WriteString("\n")
	}

	b.WriteString("## System\n\n")
	fmt.Fprintf(&b, "%d machines, %d transitions.\n\n", a.Spec.N(), a.Spec.NumTransitions())
	b.WriteString("| machine | states | transitions | IEO | IIO |\n")
	b.WriteString("|---------|-------:|------------:|-----|-----|\n")
	for i := 0; i < a.Spec.N(); i++ {
		m := a.Spec.Machine(i)
		fmt.Fprintf(&b, "| %s | %d | %d | %s | %s |\n",
			m.Name(), len(m.States()), m.NumTransitions(),
			symbolList(a.Spec.IEO(i)), symbolList(a.Spec.IIO(i)))
	}
	b.WriteString("\n")

	if warnings := core.CheckAssumptions(a.Spec); len(warnings) > 0 {
		b.WriteString("### Specification warnings\n\n")
		for _, w := range warnings {
			fmt.Fprintf(&b, "- %s\n", w)
		}
		b.WriteString("\n")
	}

	b.WriteString("## Test results\n\n")
	b.WriteString("| case | inputs | expected | observed | symptom |\n")
	b.WriteString("|------|--------|----------|----------|---------|\n")
	for i, tc := range a.Suite {
		symptom := ""
		if step, ok := a.FirstSymptom[i]; ok {
			symptom = fmt.Sprintf("step %d", step+1)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			tc.Name,
			cfsm.FormatInputs(tc.Inputs),
			cfsm.FormatObs(a.Expected[i]),
			cfsm.FormatObs(a.Observed[i]),
			symptom)
	}
	b.WriteString("\n")

	if a.HasSymptoms() {
		b.WriteString("## Candidate generation (Steps 3–5)\n\n```\n")
		b.WriteString(a.Report())
		b.WriteString("```\n\n")
	}

	if len(loc.AdditionalTests) > 0 {
		b.WriteString("## Additional diagnostic tests (Step 6)\n\n")
		b.WriteString("| target | test | spec predicts | observed |\n")
		b.WriteString("|--------|------|---------------|----------|\n")
		for _, at := range loc.AdditionalTests {
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
				a.Spec.RefString(at.Target),
				cfsm.FormatInputs(at.Test.Inputs),
				cfsm.FormatObs(at.Expected),
				cfsm.FormatObs(at.Observed))
		}
		b.WriteString("\n")
	}
	for _, r := range loc.Cleared {
		fmt.Fprintf(&b, "- cleared: %s\n", a.Spec.RefString(r))
	}
	if len(loc.Cleared) > 0 {
		b.WriteString("\n")
	}

	// Sequence diagram of the convicting evidence: the last additional test
	// if any, otherwise the first symptomatic test case. The step where
	// expected and observed outputs diverge is annotated in the diagram.
	var convicting *cfsm.TestCase
	symptomStep := -1
	if n := len(loc.AdditionalTests); n > 0 {
		at := loc.AdditionalTests[n-1]
		convicting = &at.Test
		for i := range at.Expected {
			if i >= len(at.Observed) || at.Observed[i] != at.Expected[i] {
				symptomStep = i
				break
			}
		}
	} else if a.HasSymptoms() {
		for i := range a.Suite {
			if step, ok := a.FirstSymptom[i]; ok {
				convicting = &a.Suite[i]
				symptomStep = step
				break
			}
		}
	}
	if convicting != nil {
		diag, err := a.Spec.SequenceDiagramSymptom(*convicting, symptomStep)
		if err != nil {
			return "", fmt.Errorf("report: sequence diagram: %w", err)
		}
		b.WriteString("## Convicting test, as the specification executes it\n\n")
		b.WriteString("```mermaid\n")
		b.WriteString(diag)
		b.WriteString("```\n")
	}
	return b.String(), nil
}

func symbolList(syms []cfsm.Symbol) string {
	parts := make([]string, len(syms))
	for i, s := range syms {
		parts[i] = string(s)
	}
	return strings.Join(parts, " ")
}
