package report_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/report"
	"cfsmdiag/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// figure1Traced performs the Figure 1 / t″4 diagnosis with tracing enabled.
func figure1Traced(t *testing.T) (*core.Localization, *trace.Tracer) {
	t.Helper()
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatal(err)
	}
	suite := paper.TestSuite()
	observed := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		if observed[i], err = iut.Run(tc); err != nil {
			t.Fatal(err)
		}
	}
	tr := trace.New()
	a, err := core.Analyze(spec, suite, observed, core.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	loc, err := core.Localize(a, &core.SystemOracle{Sys: iut}, core.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	return loc, tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (re-run with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestExplanationGoldenFigure1 pins the explanation report for the paper's
// walkthrough: t7 cleared by the first additional test, t″4 convicted.
func TestExplanationGoldenFigure1(t *testing.T) {
	loc, _ := figure1Traced(t)
	text := report.Explanation(loc)

	// Semantic anchors from Section 4, independent of exact layout.
	for _, want := range []string{
		"tc1, step 6",                        // the symptom
		"unique symptom transition is M1.t7", // Step 3
		`M1.t7 — cleared`,                    // first candidate resolved
		`"R, c^1, b^1"`,                      // the paper's first additional test
		`M3.t"4 — convicted`,                 // the conviction
		"fault localized",                    // the verdict
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explanation lacks %q:\n%s", want, text)
		}
	}
	checkGolden(t, "explain_figure1.golden.md", []byte(text))
}

// TestChromeTraceGoldenFigure1 pins the Chrome trace-event export of the
// Step-6 localization events for the same walkthrough.
func TestChromeTraceGoldenFigure1(t *testing.T) {
	_, tr := figure1Traced(t)
	var localize []trace.Event
	for _, e := range tr.Events() {
		if strings.HasPrefix(string(e.Kind), "localize.") {
			localize = append(localize, e)
		}
	}
	if len(localize) == 0 {
		t.Fatal("no localize.* events recorded")
	}
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, localize); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_figure1_localize.golden.json", buf.Bytes())
}
