// Package protocols provides ready-made CFSM models of classic
// communication protocols, built within the paper's model restrictions
// (deterministic partial machines, disjoint IEO/IIO alphabets, internal
// outputs triggering only external-output transitions). They serve as
// realistic diagnosis workloads beyond the paper's Figure 1 example.
package protocols

import (
	"cfsmdiag/internal/cfsm"
)

// Machine indices of the ABP system.
const (
	Sender   = 0
	Receiver = 1
)

// ABP returns an alternating-bit-protocol model with two machines.
//
// The Sender (port 1) alternates a one-bit sequence number. The tester
// triggers sends, timeouts (retransmissions) and ack deliveries; the
// Receiver (port 2) acknowledges in-sequence data and flags duplicates.
//
//	Sender states:   r0 (ready, bit 0), w0 (awaiting ack 0),
//	                 r1 (ready, bit 1), w1 (awaiting ack 1)
//	Receiver states: e0 (expecting bit 0), e1 (expecting bit 1)
//
// Port-1 inputs: send (transmit the current bit), timeout (retransmit),
// query (sender status). Port-2 inputs: ack (deliver the acknowledgment for
// the last delivered bit), query (receiver status).
//
// Message alphabet: d0/d1 sender→receiver, a0/a1 receiver→sender.
func ABP() (*cfsm.System, error) {
	sender, err := cfsm.NewMachine("Sender", "r0",
		[]cfsm.State{"r0", "w0", "r1", "w1"},
		[]cfsm.Transition{
			// Transmissions and retransmissions (internal to the receiver).
			{Name: "snd0", From: "r0", Input: "send", Output: "d0", To: "w0", Dest: Receiver},
			{Name: "rt0", From: "w0", Input: "timeout", Output: "d0", To: "w0", Dest: Receiver},
			{Name: "snd1", From: "r1", Input: "send", Output: "d1", To: "w1", Dest: Receiver},
			{Name: "rt1", From: "w1", Input: "timeout", Output: "d1", To: "w1", Dest: Receiver},
			// Acknowledgment receptions (external output at port 1).
			{Name: "ack0", From: "w0", Input: "a0", Output: "done0", To: "r1", Dest: cfsm.DestEnv},
			{Name: "ack1", From: "w1", Input: "a1", Output: "done1", To: "r0", Dest: cfsm.DestEnv},
			// Stale acknowledgments are reported and ignored.
			{Name: "stale0", From: "w1", Input: "a0", Output: "stale", To: "w1", Dest: cfsm.DestEnv},
			{Name: "stale1", From: "w0", Input: "a1", Output: "stale", To: "w0", Dest: cfsm.DestEnv},
			// Status queries.
			{Name: "qr0", From: "r0", Input: "query", Output: "ready0", To: "r0", Dest: cfsm.DestEnv},
			{Name: "qw0", From: "w0", Input: "query", Output: "wait0", To: "w0", Dest: cfsm.DestEnv},
			{Name: "qr1", From: "r1", Input: "query", Output: "ready1", To: "r1", Dest: cfsm.DestEnv},
			{Name: "qw1", From: "w1", Input: "query", Output: "wait1", To: "w1", Dest: cfsm.DestEnv},
		})
	if err != nil {
		return nil, err
	}
	receiver, err := cfsm.NewMachine("Receiver", "e0",
		[]cfsm.State{"e0", "e1"},
		[]cfsm.Transition{
			// Data receptions (external output at port 2).
			{Name: "rcv0", From: "e0", Input: "d0", Output: "deliver0", To: "e1", Dest: cfsm.DestEnv},
			{Name: "rcv1", From: "e1", Input: "d1", Output: "deliver1", To: "e0", Dest: cfsm.DestEnv},
			// Duplicates (retransmission of the already-delivered bit).
			{Name: "dup0", From: "e1", Input: "d0", Output: "dup", To: "e1", Dest: cfsm.DestEnv},
			{Name: "dup1", From: "e0", Input: "d1", Output: "dup", To: "e0", Dest: cfsm.DestEnv},
			// Acknowledgment transmissions (internal to the sender). After
			// delivering bit b the receiver is in e(1-b) and acknowledges b.
			{Name: "sak0", From: "e1", Input: "ack", Output: "a0", To: "e1", Dest: Sender},
			{Name: "sak1", From: "e0", Input: "ack", Output: "a1", To: "e0", Dest: Sender},
			// Status queries.
			{Name: "qe0", From: "e0", Input: "query", Output: "expect0", To: "e0", Dest: cfsm.DestEnv},
			{Name: "qe1", From: "e1", Input: "query", Output: "expect1", To: "e1", Dest: cfsm.DestEnv},
		})
	if err != nil {
		return nil, err
	}
	return cfsm.NewSystem(sender, receiver)
}

// MustABP returns the ABP system, panicking on construction errors; the
// construction is covered by tests.
func MustABP() *cfsm.System {
	s, err := ABP()
	if err != nil {
		panic(err)
	}
	return s
}

// ABPSuite returns a functional regression suite for the protocol: a clean
// two-message exchange, a retransmission round, and a stale-ack round.
func ABPSuite() []cfsm.TestCase {
	in := func(port int, sym cfsm.Symbol) cfsm.Input { return cfsm.Input{Port: port, Sym: sym} }
	return []cfsm.TestCase{
		{Name: "clean-exchange", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Sender, "send"),    // -> deliver0 @ receiver
			in(Receiver, "ack"),   // -> done0 @ sender
			in(Sender, "send"),    // -> deliver1 @ receiver
			in(Receiver, "ack"),   // -> done1 @ sender
			in(Sender, "query"),   // -> ready0
			in(Receiver, "query"), // -> expect0
		}},
		{Name: "retransmission", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Sender, "send"),    // -> deliver0
			in(Sender, "timeout"), // -> dup (receiver already moved to e1)
			in(Receiver, "ack"),   // -> done0
			in(Sender, "query"),   // -> ready1
		}},
		{Name: "stale-ack", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Sender, "send"),    // -> deliver0
			in(Receiver, "ack"),   // -> done0
			in(Sender, "send"),    // -> deliver1
			in(Receiver, "ack"),   // -> done1
			in(Sender, "send"),    // -> deliver0 (bit wrapped)
			in(Sender, "timeout"), // -> dup
			in(Receiver, "query"), // -> expect1
		}},
	}
}
