package protocols

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/testgen"
)

// TestProtocolDetectionRates documents and pins the fault-detection power of
// the different suite strategies on the protocol workloads (the numbers
// backing the E10 notes in EXPERIMENTS.md).
func TestProtocolDetectionRates(t *testing.T) {
	if testing.Short() {
		t.Skip("detection evaluation is slow")
	}
	abp := MustABP()
	tour, _ := testgen.Tour(abp, 0)
	verify, _ := testgen.VerificationSuite(abp)

	rates := make(map[string]float64)
	for _, mode := range []struct {
		label string
		suite []cfsm.TestCase
	}{
		{"functional", ABPSuite()},
		{"tour", tour},
		{"verification", verify},
	} {
		report, err := testgen.Detection(abp, mode.suite, false, false)
		if err != nil {
			t.Fatalf("%s: %v", mode.label, err)
		}
		rates[mode.label] = report.DetectionRate()
		t.Logf("ABP %-12s: %d cases, detected %d/%d (%.1f%%)",
			mode.label, len(mode.suite), len(report.Detected), report.Faults,
			100*report.DetectionRate())
	}
	if rates["verification"] != 1.0 {
		t.Errorf("verification suite rate = %v, want 1.0", rates["verification"])
	}
	if rates["functional"] >= rates["verification"] && rates["functional"] < 1.0 {
		t.Errorf("rate ordering broken: %v", rates)
	}
	// The 3-case functional suite already detects a sizable share.
	if rates["functional"] < 0.3 {
		t.Errorf("functional suite detects only %.1f%%", 100*rates["functional"])
	}
}
