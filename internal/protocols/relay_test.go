package protocols

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
)

func TestRelayBuilds(t *testing.T) {
	sys, err := Relay()
	if err != nil {
		t.Fatalf("Relay: %v", err)
	}
	if sys.N() != 3 {
		t.Fatalf("N = %d", sys.N())
	}
	MustRelay()
}

func TestRelayRoundTrip(t *testing.T) {
	sys := MustRelay()
	obs, err := sys.Run(RelaySuite()[0])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "-, queued^2, accepted^3, confirmed^1, quiet^1, free^3"
	if got := cfsm.FormatObs(obs); got != want {
		t.Fatalf("round trip = %q, want %q", got, want)
	}
}

func TestRelayRejectionAndOverload(t *testing.T) {
	sys := MustRelay()
	obs, err := sys.Run(RelaySuite()[1])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := cfsm.FormatObs(obs); got != "-, queued^2, bounced^1, idle^2" {
		t.Fatalf("rejection = %q", got)
	}
	obs, err = sys.Run(RelaySuite()[2])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := cfsm.FormatObs(obs); got != "-, queued^2, accepted^3, queued^2, overload^3, working^3" {
		t.Fatalf("overload = %q", got)
	}
}

// TestRelayMisroutedDispatch: the broker dispatches jobs to the client
// instead of the server — an addressing fault, localized through the
// address-escalation tier.
func TestRelayMisroutedDispatch(t *testing.T) {
	spec := MustRelay()
	bug := fault.Fault{Ref: cfsm.Ref{Machine: Broker, Name: "b3"}, Kind: fault.KindAddress, Dest: Client}
	iut, err := bug.Apply(spec)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	loc, err := core.Diagnose(spec, RelaySuite(), &core.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictLocalized {
		t.Fatalf("verdict = %v\n%s%s", loc.Verdict, loc.Analysis.Report(), loc.Report())
	}
	if *loc.Fault != bug {
		t.Fatalf("fault = %+v, want %+v", *loc.Fault, bug)
	}
	if !loc.Analysis.AddressEscalated {
		t.Error("expected the address escalation to run")
	}
}

// TestRelayTransferFault: a broker that loses its stored request (b1
// transfers to empty) is localized by the functional suite.
func TestRelayTransferFault(t *testing.T) {
	spec := MustRelay()
	bug := fault.Fault{Ref: cfsm.Ref{Machine: Broker, Name: "b1"}, Kind: fault.KindTransfer, To: "empty"}
	iut, err := bug.Apply(spec)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	loc, err := core.Diagnose(spec, RelaySuite(), &core.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictLocalized || *loc.Fault != bug {
		t.Fatalf("verdict = %v fault = %v\n%s", loc.Verdict, loc.Fault, loc.Report())
	}
}
