package protocols

import (
	"cfsmdiag/internal/cfsm"
)

// Machine indices of the relay system.
const (
	Client = 0
	Broker = 1
	Server = 2
)

// Relay returns a three-machine store-and-forward messaging system: a
// client submits requests to a broker, the broker (operator-driven, per the
// synchronization assumption) dispatches each stored request to the server
// or back to the client, and the server applies or rejects it. Addressing
// faults are natural here — a broker that dispatches to the wrong machine —
// which makes the system a good workload for the KindAddress extension.
//
//	Client states: idle, pending
//	Broker states: empty, stored
//	Server states: ready, busy
func Relay() (*cfsm.System, error) {
	client, err := cfsm.NewMachine("Client", "idle",
		[]cfsm.State{"idle", "pending"},
		[]cfsm.Transition{
			// submit: send a request to the broker (also allowed while a
			// previous request is pending — fire-and-forget semantics).
			{Name: "c1", From: "idle", Input: "submit", Output: "req", To: "pending", Dest: Broker},
			{Name: "c6", From: "pending", Input: "submit", Output: "req", To: "pending", Dest: Broker},
			// Responses routed back by the broker.
			{Name: "c2", From: "pending", Input: "bounce", Output: "bounced", To: "idle", Dest: cfsm.DestEnv},
			// Server completion notification.
			{Name: "c3", From: "pending", Input: "ok", Output: "confirmed", To: "idle", Dest: cfsm.DestEnv},
			// Status.
			{Name: "c4", From: "idle", Input: "status", Output: "quiet", To: "idle", Dest: cfsm.DestEnv},
			{Name: "c5", From: "pending", Input: "status", Output: "waiting", To: "pending", Dest: cfsm.DestEnv},
		})
	if err != nil {
		return nil, err
	}
	broker, err := cfsm.NewMachine("Broker", "empty",
		[]cfsm.State{"empty", "stored"},
		[]cfsm.Transition{
			// Reception of a client request (observable acknowledgment).
			{Name: "b1", From: "empty", Input: "req", Output: "queued", To: "stored", Dest: cfsm.DestEnv},
			{Name: "b2", From: "stored", Input: "req", Output: "full", To: "stored", Dest: cfsm.DestEnv},
			// Operator-driven dispatching.
			{Name: "b3", From: "stored", Input: "dispatch", Output: "job", To: "empty", Dest: Server},
			{Name: "b4", From: "stored", Input: "reject", Output: "bounce", To: "empty", Dest: Client},
			// Status.
			{Name: "b5", From: "empty", Input: "status", Output: "idle", To: "empty", Dest: cfsm.DestEnv},
			{Name: "b6", From: "stored", Input: "status", Output: "loaded", To: "stored", Dest: cfsm.DestEnv},
		})
	if err != nil {
		return nil, err
	}
	server, err := cfsm.NewMachine("Server", "ready",
		[]cfsm.State{"ready", "busy"},
		[]cfsm.Transition{
			// Job reception from the broker.
			{Name: "s1", From: "ready", Input: "job", Output: "accepted", To: "busy", Dest: cfsm.DestEnv},
			{Name: "s2", From: "busy", Input: "job", Output: "overload", To: "busy", Dest: cfsm.DestEnv},
			// Completion: notify the client.
			{Name: "s3", From: "busy", Input: "finish", Output: "ok", To: "ready", Dest: Client},
			// Status.
			{Name: "s4", From: "ready", Input: "status", Output: "free", To: "ready", Dest: cfsm.DestEnv},
			{Name: "s5", From: "busy", Input: "status", Output: "working", To: "busy", Dest: cfsm.DestEnv},
		})
	if err != nil {
		return nil, err
	}
	return cfsm.NewSystem(client, broker, server)
}

// MustRelay returns the relay system, panicking on construction errors.
func MustRelay() *cfsm.System {
	s, err := Relay()
	if err != nil {
		panic(err)
	}
	return s
}

// RelaySuite returns a functional suite: a full round trip, a rejection, and
// an overload probe.
func RelaySuite() []cfsm.TestCase {
	in := func(port int, sym cfsm.Symbol) cfsm.Input { return cfsm.Input{Port: port, Sym: sym} }
	return []cfsm.TestCase{
		{Name: "round-trip", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Client, "submit"),   // -> queued @ broker
			in(Broker, "dispatch"), // -> accepted @ server
			in(Server, "finish"),   // -> confirmed @ client
			in(Client, "status"),   // -> quiet
			in(Server, "status"),   // -> free
		}},
		{Name: "rejection", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Client, "submit"),
			in(Broker, "reject"), // -> bounced @ client
			in(Broker, "status"), // -> idle
		}},
		{Name: "overload", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Client, "submit"),
			in(Broker, "dispatch"),
			in(Client, "submit"),   // second request while server busy
			in(Broker, "dispatch"), // -> overload @ server
			in(Server, "status"),   // -> working
		}},
	}
}
