package protocols

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/testgen"
)

func TestGoBackNBuilds(t *testing.T) {
	sys, err := GoBackN()
	if err != nil {
		t.Fatalf("GoBackN: %v", err)
	}
	// Sender: 4 bases × 3 window positions; receiver: 4 expectations.
	if got := len(sys.Machine(Sender).States()); got != 12 {
		t.Fatalf("sender states = %d, want 12", got)
	}
	if got := len(sys.Machine(Receiver).States()); got != 4 {
		t.Fatalf("receiver states = %d, want 4", got)
	}
	MustGoBackN()
}

func TestGoBackNWindowedExchange(t *testing.T) {
	sys := MustGoBackN()
	obs, err := sys.Run(GoBackNSuite()[0])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "-, dlv0^2, dlv1^2, slide2^1, s_b2n2^1, e2^2"
	if got := cfsm.FormatObs(obs); got != want {
		t.Fatalf("windowed = %q, want %q", got, want)
	}
}

func TestGoBackNRetransmission(t *testing.T) {
	sys := MustGoBackN()
	obs, err := sys.Run(GoBackNSuite()[1])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "-, dlv0^2, dlv1^2, disc^2, slide2^1, dlv2^2, e3^2"
	if got := cfsm.FormatObs(obs); got != want {
		t.Fatalf("go-back = %q, want %q", got, want)
	}
}

// TestGoBackNWindowClosed: a third send with the window full is undefined
// and observes ε — the window really is bounded.
func TestGoBackNWindowClosed(t *testing.T) {
	sys := MustGoBackN()
	tc := cfsm.TestCase{Inputs: []cfsm.Input{
		cfsm.Reset(),
		{Port: Sender, Sym: "send"},
		{Port: Sender, Sym: "send"},
		{Port: Sender, Sym: "send"}, // window (2) full
	}}
	obs, err := sys.Run(tc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if obs[3].Sym != cfsm.Epsilon {
		t.Fatalf("third send = %v, want ε (window closed)", obs[3])
	}
}

// TestGoBackNDiagnoseStuckWindow: the sender fails to slide its window on
// ack (a transfer fault in an ack transition) and the functional suite
// localizes it.
func TestGoBackNDiagnoseStuckWindow(t *testing.T) {
	spec := MustGoBackN()
	// Find the ack transition out of b0n2 on k2 (the one the windowed
	// scenario exercises).
	var ref cfsm.Ref
	for _, r := range spec.Refs() {
		tr, _ := spec.Transition(r)
		if tr.From == "b0n2" && tr.Input == "k2" {
			ref = r
			break
		}
	}
	if ref.Name == "" {
		t.Fatal("ack transition b0n2/k2 not found")
	}
	bug := fault.Fault{Ref: ref, Kind: fault.KindTransfer, To: "b0n2"}
	iut, err := bug.Apply(spec)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	loc, err := core.Diagnose(spec, GoBackNSuite(), &core.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictLocalized || *loc.Fault != bug {
		t.Fatalf("verdict = %v fault = %v\n%s%s",
			loc.Verdict, loc.Fault, loc.Analysis.Report(), loc.Report())
	}
}

// TestGoBackNSweepSampled: a sampled mutant sweep with the verification
// suite stays sound on the larger machine.
func TestGoBackNSweepSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("go-back-N sweep is slow")
	}
	spec := MustGoBackN()
	suite, _ := testgen.VerificationSuite(spec)
	mutants := fault.Mutants(spec)
	checked := 0
	for i := 0; i < len(mutants); i += 31 { // sparse sample: the full sweep takes minutes
		m := mutants[i]
		loc, err := core.Diagnose(spec, suite, &core.SystemOracle{Sys: m.System})
		if err != nil {
			t.Fatalf("diagnose %s: %v", m.Fault.Describe(spec), err)
		}
		checked++
		switch loc.Verdict {
		case core.VerdictLocalized:
			if loc.Fault.Ref != m.Fault.Ref {
				t.Errorf("%s localized to %s", m.Fault.Describe(spec), loc.Fault.Describe(spec))
			}
		case core.VerdictAmbiguous:
			ok := false
			for _, r := range loc.Remaining {
				if r.Ref == m.Fault.Ref {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s ambiguous without the truth", m.Fault.Describe(spec))
			}
		case core.VerdictNoFault:
			// The verification suite guarantees detection of detectable
			// mutants; an undetected one must be equivalent.
			if !testgen.SystemsEquivalent(spec, m.System) {
				t.Errorf("verification suite missed %s", m.Fault.Describe(spec))
			}
		default:
			t.Errorf("%s: verdict %v", m.Fault.Describe(spec), loc.Verdict)
		}
	}
	if checked == 0 {
		t.Fatal("no mutants sampled")
	}
}
