package protocols

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
)

// GoBackN returns a go-back-N sender/receiver model with window size 2 and
// sequence numbers modulo 4, built within the paper's model restrictions.
//
// The sender tracks (base, next): base is the oldest unacknowledged
// sequence number and next the next to transmit, with 0 ≤ next-base ≤ 2
// (window 2). The tester triggers transmissions ("send"), go-back-N
// retransmissions of the base frame ("timeout"), and the receiver's
// cumulative acknowledgments ("ack"). States are named b<base>n<next>
// (modulo 4), e.g. "b0n2" = base 0, next 2.
//
// The receiver tracks the next expected sequence number (states x0..x3),
// delivers in-sequence frames, discards out-of-sequence frames (reporting
// "disc"), and acknowledges cumulatively: ack k means "expecting k", i.e.
// all frames below k are acknowledged.
func GoBackN() (*cfsm.System, error) {
	const mod = 4
	const window = 2

	frame := func(k int) cfsm.Symbol { return cfsm.Symbol(fmt.Sprintf("f%d", k%mod)) }
	ackSym := func(k int) cfsm.Symbol { return cfsm.Symbol(fmt.Sprintf("k%d", k%mod)) }
	senderState := func(base, next int) cfsm.State {
		return cfsm.State(fmt.Sprintf("b%dn%d", base%mod, next%mod))
	}

	// Sender states: all (base, next) with 0 <= next-base <= window.
	var senderStates []cfsm.State
	var senderTrans []cfsm.Transition
	n := 0
	name := func(kind string) string {
		n++
		return fmt.Sprintf("%s%d", kind, n)
	}
	for base := 0; base < mod; base++ {
		for d := 0; d <= window; d++ {
			next := (base + d) % mod
			st := senderState(base, next)
			senderStates = append(senderStates, st)
			// send: transmit frame `next` if the window is open.
			if d < window {
				senderTrans = append(senderTrans, cfsm.Transition{
					Name: name("snd"), From: st, Input: "send",
					Output: frame(next), To: senderState(base, next+1), Dest: Receiver,
				})
			}
			// timeout: go back N — retransmit the base frame (the model
			// sends one frame per stimulus; repeated timeouts resend the
			// rest). The window collapses to base+1 outstanding.
			if d > 0 {
				senderTrans = append(senderTrans, cfsm.Transition{
					Name: name("rtx"), From: st, Input: "timeout",
					Output: frame(base), To: senderState(base, base+1), Dest: Receiver,
				})
			}
			// Acknowledgment receptions: ack k slides the base to k for any
			// k within the window span (cumulative). After a go-back the
			// receiver may acknowledge frames the sender has rolled back
			// past; the sender then also advances next to k.
			for a := 1; a <= window; a++ {
				k := (base + a) % mod
				nd := d - a
				if nd < 0 {
					nd = 0
				}
				senderTrans = append(senderTrans, cfsm.Transition{
					Name: name("ack"), From: st, Input: ackSym(k),
					Output: cfsm.Symbol(fmt.Sprintf("slide%d", k)), To: senderState(k, k+nd), Dest: cfsm.DestEnv,
				})
			}
			// Status query.
			senderTrans = append(senderTrans, cfsm.Transition{
				Name: name("qs"), From: st, Input: "query",
				Output: cfsm.Symbol(fmt.Sprintf("s_%s", st)), To: st, Dest: cfsm.DestEnv,
			})
		}
	}
	sender, err := cfsm.NewMachine("Sender", senderState(0, 0), senderStates, senderTrans)
	if err != nil {
		return nil, fmt.Errorf("gbn sender: %w", err)
	}

	// Receiver states: next expected sequence number.
	var recvStates []cfsm.State
	var recvTrans []cfsm.Transition
	for e := 0; e < mod; e++ {
		st := cfsm.State(fmt.Sprintf("x%d", e))
		recvStates = append(recvStates, st)
		for k := 0; k < mod; k++ {
			if k == e {
				// In-sequence frame: deliver and advance.
				recvTrans = append(recvTrans, cfsm.Transition{
					Name: name("rcv"), From: st, Input: frame(k),
					Output: cfsm.Symbol(fmt.Sprintf("dlv%d", k)), To: cfsm.State(fmt.Sprintf("x%d", (e+1)%mod)), Dest: cfsm.DestEnv,
				})
			} else {
				// Out-of-sequence frame: discard.
				recvTrans = append(recvTrans, cfsm.Transition{
					Name: name("dsc"), From: st, Input: frame(k),
					Output: "disc", To: st, Dest: cfsm.DestEnv,
				})
			}
		}
		// Cumulative acknowledgment of everything below e.
		recvTrans = append(recvTrans, cfsm.Transition{
			Name: name("sak"), From: st, Input: "ack",
			Output: ackSym(e), To: st, Dest: Sender,
		})
		recvTrans = append(recvTrans, cfsm.Transition{
			Name: name("qr"), From: st, Input: "query",
			Output: cfsm.Symbol(fmt.Sprintf("e%d", e)), To: st, Dest: cfsm.DestEnv,
		})
	}
	receiver, err := cfsm.NewMachine("Receiver", "x0", recvStates, recvTrans)
	if err != nil {
		return nil, fmt.Errorf("gbn receiver: %w", err)
	}
	return cfsm.NewSystem(sender, receiver)
}

// MustGoBackN returns the go-back-N system, panicking on construction
// errors.
func MustGoBackN() *cfsm.System {
	s, err := GoBackN()
	if err != nil {
		panic(err)
	}
	return s
}

// GoBackNSuite returns a functional suite: a windowed exchange with a
// cumulative acknowledgment, and a loss/retransmission round.
func GoBackNSuite() []cfsm.TestCase {
	in := func(port int, sym cfsm.Symbol) cfsm.Input { return cfsm.Input{Port: port, Sym: sym} }
	return []cfsm.TestCase{
		{Name: "windowed", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Sender, "send"),    // f0 -> dlv0
			in(Sender, "send"),    // f1 -> dlv1
			in(Receiver, "ack"),   // k2 -> slide2
			in(Sender, "query"),   // s_b2n2
			in(Receiver, "query"), // e2
		}},
		{Name: "go-back", Inputs: []cfsm.Input{
			cfsm.Reset(),
			in(Sender, "send"),    // f0 -> dlv0
			in(Sender, "send"),    // f1 -> dlv1
			in(Sender, "timeout"), // resend f0 -> disc (receiver expects 2)
			in(Receiver, "ack"),   // k2 -> slide2 (sender advances past the rollback)
			in(Sender, "send"),    // f2 -> dlv2
			in(Receiver, "query"), // e3
		}},
	}
}
