package protocols

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/testgen"
)

func TestABPBuilds(t *testing.T) {
	sys, err := ABP()
	if err != nil {
		t.Fatalf("ABP: %v", err)
	}
	if sys.N() != 2 {
		t.Fatalf("N = %d", sys.N())
	}
	MustABP()
}

func TestABPCleanExchange(t *testing.T) {
	sys := MustABP()
	suite := ABPSuite()
	obs, err := sys.Run(suite[0])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "-, deliver0^2, done0^1, deliver1^2, done1^1, ready0^1, expect0^2"
	if got := cfsm.FormatObs(obs); got != want {
		t.Fatalf("clean exchange = %q, want %q", got, want)
	}
}

func TestABPRetransmission(t *testing.T) {
	sys := MustABP()
	obs, err := sys.Run(ABPSuite()[1])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "-, deliver0^2, dup^2, done0^1, ready1^1"
	if got := cfsm.FormatObs(obs); got != want {
		t.Fatalf("retransmission = %q, want %q", got, want)
	}
}

func TestABPStaleAck(t *testing.T) {
	sys := MustABP()
	obs, err := sys.Run(ABPSuite()[2])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "-, deliver0^2, done0^1, deliver1^2, done1^1, deliver0^2, dup^2, expect1^2"
	if got := cfsm.FormatObs(obs); got != want {
		t.Fatalf("stale-ack = %q, want %q", got, want)
	}
}

// TestABPDiagnoseBitToggleBug: the classic ABP bug — the sender fails to
// toggle its bit after done0 (ack0 transfers to r0 instead of r1) — is
// detected by the regression suite and localized.
func TestABPDiagnoseBitToggleBug(t *testing.T) {
	spec := MustABP()
	bug := fault.Fault{Ref: cfsm.Ref{Machine: Sender, Name: "ack0"}, Kind: fault.KindTransfer, To: "r0"}
	iut, err := bug.Apply(spec)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	loc, err := core.Diagnose(spec, ABPSuite(), &core.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictLocalized {
		t.Fatalf("verdict = %v\n%s%s", loc.Verdict, loc.Analysis.Report(), loc.Report())
	}
	if *loc.Fault != bug {
		t.Fatalf("fault = %+v, want %+v", *loc.Fault, bug)
	}
}

// TestABPDiagnoseWrongAck: the receiver acknowledges the wrong bit (sak0
// outputs a1 instead of a0) — an internal output fault.
func TestABPDiagnoseWrongAck(t *testing.T) {
	spec := MustABP()
	bug := fault.Fault{Ref: cfsm.Ref{Machine: Receiver, Name: "sak0"}, Kind: fault.KindOutput, Output: "a1"}
	iut, err := bug.Apply(spec)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	loc, err := core.Diagnose(spec, ABPSuite(), &core.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictLocalized {
		t.Fatalf("verdict = %v\n%s%s", loc.Verdict, loc.Analysis.Report(), loc.Report())
	}
	if *loc.Fault != bug {
		t.Fatalf("fault = %+v, want %+v", *loc.Fault, bug)
	}
}

// TestABPSweep: every detectable single-transition mutant of the ABP model
// is detected by the verification suite and localized to the correct
// transition.
func TestABPSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("ABP sweep is slow")
	}
	spec := MustABP()
	suite, undetectable := testgen.VerificationSuite(spec)
	for _, f := range undetectable {
		t.Logf("undetectable: %s", f.Describe(spec))
	}
	detected, correct := 0, 0
	skip := make(map[string]bool)
	for _, f := range undetectable {
		skip[f.Describe(spec)] = true
	}
	for _, m := range fault.Mutants(spec) {
		if skip[m.Fault.Describe(spec)] {
			continue
		}
		loc, err := core.Diagnose(spec, suite, &core.SystemOracle{Sys: m.System})
		if err != nil {
			t.Fatalf("diagnose %s: %v", m.Fault.Describe(spec), err)
		}
		switch loc.Verdict {
		case core.VerdictNoFault:
			t.Errorf("verification suite missed %s", m.Fault.Describe(spec))
		case core.VerdictLocalized:
			detected++
			if loc.Fault.Ref == m.Fault.Ref {
				correct++
			} else {
				t.Errorf("%s localized to %s", m.Fault.Describe(spec), loc.Fault.Describe(spec))
			}
		case core.VerdictAmbiguous:
			detected++
			ok := false
			for _, r := range loc.Remaining {
				if r.Ref == m.Fault.Ref {
					ok = true
				}
			}
			if ok {
				correct++
			} else {
				t.Errorf("%s ambiguous without the truth", m.Fault.Describe(spec))
			}
		default:
			t.Errorf("%s: verdict %v", m.Fault.Describe(spec), loc.Verdict)
		}
	}
	t.Logf("ABP sweep: %d/%d detected mutants correctly attributed", correct, detected)
	if detected == 0 || correct != detected {
		t.Errorf("sweep: %d/%d", correct, detected)
	}
}
