package async

import (
	"fmt"
	"math/rand"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/testgen"
)

// Oracle executes unsynchronized scripts against the implementation under
// test. Each execution yields one outcome — whichever interleaving the
// environment happened to produce.
type Oracle interface {
	Execute(script Script) (Outcome, error)
}

// RandomOracle is an Oracle backed by a (typically mutated) system; it
// resolves the input races with a seeded pseudo-random scheduler, so runs
// are reproducible.
type RandomOracle struct {
	Sys     *cfsm.System
	Rng     *rand.Rand
	Scripts int
	Inputs  int
}

var _ Oracle = (*RandomOracle)(nil)

// Execute runs the script, choosing a random ready port at each step.
func (o *RandomOracle) Execute(script Script) (Outcome, error) {
	if len(script.Inputs) != o.Sys.N() {
		return Outcome{}, fmt.Errorf("async: script has %d ports for %d machines", len(script.Inputs), o.Sys.N())
	}
	o.Scripts++
	o.Inputs += script.TotalInputs()
	cfg := o.Sys.InitialConfig()
	pos := make([]int, o.Sys.N())
	streams := make([][]cfsm.Symbol, o.Sys.N())
	for {
		var ready []int
		for port := range pos {
			if pos[port] < len(script.Inputs[port]) {
				ready = append(ready, port)
			}
		}
		if len(ready) == 0 {
			return Outcome{Streams: streams}, nil
		}
		port := ready[0]
		if o.Rng != nil && len(ready) > 1 {
			port = ready[o.Rng.Intn(len(ready))]
		}
		in := cfsm.Input{Port: port, Sym: script.Inputs[port][pos[port]]}
		next, obs, _, err := o.Sys.Apply(cfg, in)
		if err != nil {
			return Outcome{}, err
		}
		cfg = next
		pos[port]++
		streams[obs.Port] = append(streams[obs.Port], obs.Sym)
	}
}

// Analysis is the conservative candidate generation under nondeterminism.
type Analysis struct {
	Spec     *cfsm.System
	Scripts  []Script
	Observed []Outcome
	// Detected reports that at least one observation is impossible under
	// the specification.
	Detected bool
	// Candidates are the transitions executed in at least one interleaving
	// of at least one script.
	Candidates []cfsm.Ref
	// Hypotheses are the single-transition faults under which every
	// observed outcome is possible.
	Hypotheses []fault.Fault
}

// Analyze performs the conservative nondeterministic analysis: the fault is
// detected when some observed outcome is impossible under the specification,
// and a fault hypothesis survives when every observed outcome is possible
// under the rewired specification.
func Analyze(spec *cfsm.System, scripts []Script, observed []Outcome) (*Analysis, error) {
	if len(observed) != len(scripts) {
		return nil, fmt.Errorf("async: %d outcomes for %d scripts", len(observed), len(scripts))
	}
	a := &Analysis{Spec: spec, Scripts: scripts, Observed: observed}

	executedAll := make(map[cfsm.Ref]bool)
	for i, script := range scripts {
		set, executed, err := Outcomes(spec, script)
		if err != nil {
			return nil, fmt.Errorf("async: script %d: %w", i, err)
		}
		for r := range executed {
			executedAll[r] = true
		}
		if !set.Contains(observed[i]) {
			a.Detected = true
		}
	}
	for _, r := range spec.Refs() {
		if executedAll[r] {
			a.Candidates = append(a.Candidates, r)
		}
	}
	if !a.Detected {
		return a, nil
	}

	for _, f := range fault.Enumerate(spec) {
		if !executedAll[f.Ref] {
			continue
		}
		mutant, err := f.Apply(spec)
		if err != nil {
			continue
		}
		consistent := true
		for i, script := range scripts {
			ok, err := Possible(mutant, script, observed[i])
			if err != nil {
				return nil, fmt.Errorf("async: hypothesis %s: %w", f.Describe(spec), err)
			}
			if !ok {
				consistent = false
				break
			}
		}
		if consistent {
			a.Hypotheses = append(a.Hypotheses, f)
		}
	}
	return a, nil
}

// Localization is the adaptive outcome of the nondeterministic diagnosis.
type Localization struct {
	Analysis  *Analysis
	Verdict   core.Verdict
	Localized *fault.Fault
	Remaining []fault.Fault
	Probes    []Script
}

// Localize discriminates the surviving hypotheses with single-port probes,
// which are race-free and hence deterministic: for a pair of variants it
// searches a distinguishing input sequence confined to one port, executes it
// as a script, and eliminates the variants whose (deterministic) prediction
// disagrees with the observation. Hypotheses distinguishable only through
// cross-port races remain in Remaining and the verdict is ambiguous.
func Localize(a *Analysis, oracle Oracle) (*Localization, error) {
	loc := &Localization{Analysis: a}
	if !a.Detected {
		loc.Verdict = core.VerdictNoFault
		return loc, nil
	}
	if len(a.Hypotheses) == 0 {
		loc.Verdict = core.VerdictInconsistent
		return loc, nil
	}

	type variantT struct {
		f   *fault.Fault
		sys *cfsm.System
	}
	live := []variantT{{f: nil, sys: a.Spec}}
	for i := range a.Hypotheses {
		sys, err := a.Hypotheses[i].Apply(a.Spec)
		if err != nil {
			continue
		}
		live = append(live, variantT{f: &a.Hypotheses[i], sys: sys})
	}

	portInputs := func(port int) []cfsm.Input {
		var out []cfsm.Input
		for _, sym := range a.Spec.Inputs(port) {
			out = append(out, cfsm.Input{Port: port, Sym: sym})
		}
		return out
	}

	for len(live) > 1 {
		var probe *Script
		var probeSeq []cfsm.Input
		for i := 0; i < len(live) && probe == nil; i++ {
			for j := i + 1; j < len(live) && probe == nil; j++ {
				for port := 0; port < a.Spec.N(); port++ {
					seq, ok := testgen.DistinguishOver(
						testgen.Variant{Sys: live[i].sys, Cfg: live[i].sys.InitialConfig()},
						testgen.Variant{Sys: live[j].sys, Cfg: live[j].sys.InitialConfig()},
						portInputs(port), nil,
					)
					if !ok {
						continue
					}
					syms := make([]cfsm.Symbol, len(seq))
					for k, in := range seq {
						syms[k] = in.Sym
					}
					s := SinglePort(a.Spec.N(), port, syms)
					s.Name = fmt.Sprintf("probe-%d", len(loc.Probes)+1)
					probe = &s
					probeSeq = seq
					break
				}
			}
		}
		if probe == nil {
			break
		}
		observed, err := oracle.Execute(*probe)
		if err != nil {
			return nil, fmt.Errorf("async: execute %s: %w", probe.Name, err)
		}
		loc.Probes = append(loc.Probes, *probe)
		var next []variantT
		for _, v := range live {
			if predictSinglePort(v.sys, probeSeq).Equal(observed) {
				next = append(next, v)
			}
		}
		live = next
	}

	switch {
	case len(live) == 0:
		loc.Verdict = core.VerdictInconsistent
	case len(live) == 1 && live[0].f == nil:
		loc.Verdict = core.VerdictInconsistent
	case len(live) == 1:
		loc.Verdict = core.VerdictLocalized
		loc.Localized = live[0].f
	default:
		for _, v := range live {
			if v.f != nil {
				loc.Remaining = append(loc.Remaining, *v.f)
			}
		}
		// A single remaining hypothesis is convicted by elimination: the
		// specification itself cannot explain the detected symptom.
		if len(loc.Remaining) == 1 {
			loc.Verdict = core.VerdictLocalized
			loc.Localized = &loc.Remaining[0]
			loc.Remaining = nil
		} else {
			loc.Verdict = core.VerdictAmbiguous
		}
	}
	return loc, nil
}

// predictSinglePort runs a race-free single-port sequence on a system and
// returns the deterministic outcome.
func predictSinglePort(sys *cfsm.System, seq []cfsm.Input) Outcome {
	cfg := sys.InitialConfig()
	streams := make([][]cfsm.Symbol, sys.N())
	for _, in := range seq {
		next, obs, _, err := sys.Apply(cfg, in)
		if err != nil {
			return Outcome{Streams: streams}
		}
		cfg = next
		streams[obs.Port] = append(streams[obs.Port], obs.Sym)
	}
	return Outcome{Streams: streams}
}

// Diagnose is the end-to-end nondeterministic entry point: it executes the
// scripts against the oracle, analyzes conservatively and localizes with
// single-port probes.
func Diagnose(spec *cfsm.System, scripts []Script, oracle Oracle) (*Localization, error) {
	observed := make([]Outcome, len(scripts))
	for i, s := range scripts {
		o, err := oracle.Execute(s)
		if err != nil {
			return nil, fmt.Errorf("async: execute script %d: %w", i, err)
		}
		observed[i] = o
	}
	a, err := Analyze(spec, scripts, observed)
	if err != nil {
		return nil, err
	}
	return Localize(a, oracle)
}
