// Package async extends the diagnosis toward the nondeterministic setting
// the paper's concluding discussion names first among the open questions:
// "the diagnostic of distributed systems which are represented by CFSMs and
// have non-deterministic behaviors. The non-determinism can be caused by the
// absence of synchronization between the different ports."
//
// Model. Without the synchronization assumption, local testers at the N
// ports apply their input sequences independently: the global interleaving
// of inputs across ports is not controlled, although each port's inputs are
// applied in order and each input is still processed atomically (its
// internal→external chain completes before the next input anywhere — the
// queues carry at most one message, as in the paper's restricted model).
// Each port observes the stream of outputs appearing at that port; the
// correlation between streams of different ports is lost.
//
// A test is therefore a Script (one input sequence per port), its execution
// yields one Outcome (one output stream per port), and a specification
// admits a *set* of possible outcomes per script. Diagnosis must be
// conservative: a fault hypothesis explains an observation only if the
// observed outcome is possible under the hypothesis; a hypothesis is refuted
// only if the observation is impossible under it.
//
// Localization uses single-port probes: a script that stimulates one port
// only is free of cross-port races and behaves deterministically, so the
// synchronized variant-elimination machinery applies. Hypotheses that can
// only be separated by racing inputs may remain ambiguous; the verdict
// reports them honestly.
package async

import (
	"fmt"
	"sort"
	"strings"

	"cfsmdiag/internal/cfsm"
)

// Script is one unsynchronized test: Inputs[p] is the sequence of input
// symbols the local tester applies at port p, in order. A reset is implicit
// at the start of every script (resets are assumed to be coordinated, as
// they re-establish the global initial configuration).
type Script struct {
	Name   string
	Inputs [][]cfsm.Symbol // indexed by port
}

// TotalInputs counts the inputs of the script.
func (s Script) TotalInputs() int {
	n := 0
	for _, seq := range s.Inputs {
		n += len(seq)
	}
	return n
}

// SinglePort builds a script that stimulates only the given port.
func SinglePort(n int, port int, inputs []cfsm.Symbol) Script {
	s := Script{Inputs: make([][]cfsm.Symbol, n)}
	s.Inputs[port] = append([]cfsm.Symbol(nil), inputs...)
	return s
}

// Outcome is one possible observation of a script: Streams[p] is the
// sequence of output symbols observed at port p.
type Outcome struct {
	Streams [][]cfsm.Symbol
}

// Key returns a canonical encoding for set membership.
func (o Outcome) Key() string {
	parts := make([]string, len(o.Streams))
	for i, stream := range o.Streams {
		syms := make([]string, len(stream))
		for j, s := range stream {
			syms[j] = string(s)
		}
		parts[i] = strings.Join(syms, ",")
	}
	return strings.Join(parts, " | ")
}

// Equal reports whether two outcomes are identical.
func (o Outcome) Equal(p Outcome) bool { return o.Key() == p.Key() }

// OutcomeSet is a set of possible outcomes keyed by Outcome.Key.
type OutcomeSet map[string]Outcome

// Contains reports membership.
func (s OutcomeSet) Contains(o Outcome) bool {
	_, ok := s[o.Key()]
	return ok
}

// Keys returns the sorted outcome keys, for deterministic reporting.
func (s OutcomeSet) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// exploreLimit bounds the interleaving exploration; the number of
// interleavings grows multinomially with the script lengths.
const exploreLimit = 500_000

// Outcomes enumerates every outcome the system admits for the script, by
// exploring all interleavings of the per-port input sequences from the
// initial configuration. It also returns the set of transitions executed in
// at least one interleaving — the nondeterministic counterpart of the
// conflict sets. The error reports exploration-limit exhaustion, which
// would make a conservative analysis unsound.
func Outcomes(sys *cfsm.System, script Script) (OutcomeSet, map[cfsm.Ref]bool, error) {
	if len(script.Inputs) != sys.N() {
		return nil, nil, fmt.Errorf("async: script has %d ports for %d machines", len(script.Inputs), sys.N())
	}
	outcomes := make(OutcomeSet)
	executed := make(map[cfsm.Ref]bool)
	visited := make(map[string]bool)
	steps := 0

	type frame struct {
		cfg     cfsm.Config
		pos     []int
		streams [][]cfsm.Symbol
	}
	encode := func(f frame) string {
		var b strings.Builder
		b.WriteString(f.cfg.Key())
		for _, p := range f.pos {
			fmt.Fprintf(&b, "#%d", p)
		}
		b.WriteString("#")
		b.WriteString(Outcome{Streams: f.streams}.Key())
		return b.String()
	}
	cloneStreams := func(streams [][]cfsm.Symbol) [][]cfsm.Symbol {
		out := make([][]cfsm.Symbol, len(streams))
		for i, s := range streams {
			out[i] = append([]cfsm.Symbol(nil), s...)
		}
		return out
	}

	start := frame{
		cfg:     sys.InitialConfig(),
		pos:     make([]int, sys.N()),
		streams: make([][]cfsm.Symbol, sys.N()),
	}
	stack := []frame{start}
	visited[encode(start)] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		done := true
		for port := 0; port < sys.N(); port++ {
			if f.pos[port] >= len(script.Inputs[port]) {
				continue
			}
			done = false
			steps++
			if steps > exploreLimit {
				return nil, nil, fmt.Errorf("async: interleaving exploration exceeded %d steps", exploreLimit)
			}
			in := cfsm.Input{Port: port, Sym: script.Inputs[port][f.pos[port]]}
			next, obs, trace, err := sys.Apply(f.cfg, in)
			if err != nil {
				return nil, nil, err
			}
			for _, e := range trace {
				executed[e.Ref()] = true
			}
			nf := frame{
				cfg:     next,
				pos:     append([]int(nil), f.pos...),
				streams: cloneStreams(f.streams),
			}
			nf.pos[port]++
			nf.streams[obs.Port] = append(nf.streams[obs.Port], obs.Sym)
			key := encode(nf)
			if !visited[key] {
				visited[key] = true
				stack = append(stack, nf)
			}
		}
		if done {
			o := Outcome{Streams: f.streams}
			outcomes[o.Key()] = o
		}
	}
	return outcomes, executed, nil
}

// Possible reports whether the system admits the observed outcome for the
// script.
func Possible(sys *cfsm.System, script Script, observed Outcome) (bool, error) {
	set, _, err := Outcomes(sys, script)
	if err != nil {
		return false, err
	}
	return set.Contains(observed), nil
}
