package async

import (
	"math/rand"
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/testgen"
)

// projectSuite converts a synchronized test suite into unsynchronized
// scripts by projecting each test case onto its ports. The projection loses
// the inter-port ordering, so detection power drops — but the analysis must
// stay conservative: no false detection on a conforming implementation and
// no wrong conviction on mutants.
func projectSuite(sys *cfsm.System, suite []cfsm.TestCase) []Script {
	var out []Script
	for _, tc := range suite {
		s := Script{Name: tc.Name, Inputs: make([][]cfsm.Symbol, sys.N())}
		for _, in := range tc.Inputs {
			if in.IsReset() {
				continue // every script starts from the initial configuration
			}
			s.Inputs[in.Port] = append(s.Inputs[in.Port], in.Sym)
		}
		out = append(out, s)
	}
	return out
}

// TestAsyncConservativeOnSpec: projected scripts never flag the conforming
// implementation.
func TestAsyncConservativeOnSpec(t *testing.T) {
	spec := paper.MustFigure1()
	scripts := projectSuite(spec, paper.TestSuite())
	oracle := &RandomOracle{Sys: spec, Rng: rand.New(rand.NewSource(2))}
	loc, err := Diagnose(spec, scripts, oracle)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictNoFault {
		t.Fatalf("verdict = %v, want no fault", loc.Verdict)
	}
}

// TestAsyncSweepSampled: over sampled mutants, the unsynchronized diagnosis
// is sound — it never convicts a wrong transition and never declares
// in-model observations inconsistent. Detection is naturally weaker than in
// the synchronized setting (the projection loses ordering), which the test
// records but does not require.
func TestAsyncSweepSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("async sweep is slow")
	}
	spec := paper.MustFigure1()
	// Short scripts only: interleaving exploration is multinomial in the
	// per-port lengths, so projecting long tours is intractable. Splitting
	// the tour into per-port probes keeps each script race-free.
	scripts := projectSuite(spec, paper.TestSuite())
	syncSuite, _ := testgen.Tour(spec, 6)
	for _, tc := range syncSuite {
		for port := 0; port < spec.N(); port++ {
			s := projectSuite(spec, []cfsm.TestCase{tc})[0]
			single := Script{Name: tc.Name, Inputs: make([][]cfsm.Symbol, spec.N())}
			single.Inputs[port] = s.Inputs[port]
			if len(single.Inputs[port]) > 0 {
				scripts = append(scripts, single)
			}
		}
	}
	mutants := fault.Mutants(spec)
	detected, correct := 0, 0
	for i := 0; i < len(mutants); i += 5 {
		m := mutants[i]
		oracle := &RandomOracle{Sys: m.System, Rng: rand.New(rand.NewSource(int64(i)))}
		loc, err := Diagnose(spec, scripts, oracle)
		if err != nil {
			t.Fatalf("diagnose %s: %v", m.Fault.Describe(spec), err)
		}
		switch loc.Verdict {
		case core.VerdictNoFault:
			// The observed interleaving happened to be explainable; fine.
		case core.VerdictLocalized:
			detected++
			if loc.Localized.Ref == m.Fault.Ref {
				correct++
			} else {
				t.Errorf("%s convicted as %s", m.Fault.Describe(spec), loc.Localized.Describe(spec))
			}
		case core.VerdictAmbiguous:
			detected++
			ok := false
			for _, r := range loc.Remaining {
				if r.Ref == m.Fault.Ref {
					ok = true
				}
			}
			if ok {
				correct++
			} else {
				t.Errorf("%s ambiguous without the truth", m.Fault.Describe(spec))
			}
		default:
			t.Errorf("%s: verdict %v", m.Fault.Describe(spec), loc.Verdict)
		}
	}
	if detected == 0 {
		t.Fatal("no mutant was detected by the projected scripts")
	}
	t.Logf("async sampled sweep: %d/%d detected mutants correctly attributed", correct, detected)
}
