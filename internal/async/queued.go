package async

import (
	"fmt"
	"strconv"
	"strings"

	"cfsmdiag/internal/cfsm"
)

// The queued semantics drops the synchronization assumption entirely: an
// internal output is not consumed immediately by the receiver but placed in
// the receiver's input queue (q_{j<i} of Section 2.1), and its delivery is a
// separate event racing with the testers' inputs and with deliveries from
// other queues. This is the full message-passing nondeterminism of the CFSM
// model; the atomic semantics of Outcomes is its special case in which every
// queue is drained immediately.
//
// Queue discipline is FIFO per ordered machine pair. A delivery that finds
// no transition (undefined reception) is observed as ε at the receiver's
// port, matching the synchronized semantics. Receptions that would forward
// internally are impossible for validated systems (the internal-chain
// restriction); they surface as errors.

// queuedState is one exploration node: machine states, per-pair FIFO
// queues, per-port script positions and the output streams so far.
type queuedState struct {
	cfg     cfsm.Config
	queues  map[uint32][]cfsm.Symbol // keyed by queueKey(i, j)
	pos     []int
	streams [][]cfsm.Symbol
}

// queueKey packs the ordered machine pair (from, to) into one integer, so
// the hot exploration loop indexes its queue map without formatting (and
// without allocating) a string key per probe. Machine counts are far below
// 1<<16.
func queueKey(from, to int) uint32 { return uint32(from)<<16 | uint32(to) }

func (s queuedState) encode() string {
	var b strings.Builder
	b.WriteString(s.cfg.Key())
	b.WriteByte('#')
	// Deterministic queue ordering.
	for i := 0; i < len(s.pos); i++ {
		for j := 0; j < len(s.pos); j++ {
			if q := s.queues[queueKey(i, j)]; len(q) > 0 {
				b.WriteByte('q')
				b.WriteString(strconv.Itoa(i))
				b.WriteByte('>')
				b.WriteString(strconv.Itoa(j))
				b.WriteByte(':')
				for _, m := range q {
					b.WriteString(string(m))
					b.WriteByte(',')
				}
			}
		}
	}
	b.WriteByte('#')
	for _, p := range s.pos {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte('.')
	}
	b.WriteByte('#')
	b.WriteString(Outcome{Streams: s.streams}.Key())
	return b.String()
}

func (s queuedState) clone() queuedState {
	out := queuedState{
		cfg:     s.cfg.Clone(),
		queues:  make(map[uint32][]cfsm.Symbol, len(s.queues)),
		pos:     append([]int(nil), s.pos...),
		streams: make([][]cfsm.Symbol, len(s.streams)),
	}
	for k, q := range s.queues {
		out.queues[k] = append([]cfsm.Symbol(nil), q...)
	}
	for i, st := range s.streams {
		out.streams[i] = append([]cfsm.Symbol(nil), st...)
	}
	return out
}

// OutcomesQueued enumerates every outcome the system admits for the script
// under the queued (fully asynchronous) semantics. The result is a superset
// of Outcomes' atomic semantics whenever queue deliveries can race.
func OutcomesQueued(sys *cfsm.System, script Script) (OutcomeSet, error) {
	if len(script.Inputs) != sys.N() {
		return nil, fmt.Errorf("async: script has %d ports for %d machines", len(script.Inputs), sys.N())
	}
	outcomes := make(OutcomeSet)
	visited := make(map[string]bool)
	steps := 0

	start := queuedState{
		cfg:     sys.InitialConfig(),
		queues:  map[uint32][]cfsm.Symbol{},
		pos:     make([]int, sys.N()),
		streams: make([][]cfsm.Symbol, sys.N()),
	}
	visited[start.encode()] = true
	stack := []queuedState{start}

	// step applies one local transition of machine m on input sym: the
	// output either goes to m's stream (external) or is enqueued.
	step := func(s *queuedState, m int, sym cfsm.Symbol) error {
		t, ok := sys.Machine(m).Lookup(s.cfg[m], sym)
		if !ok {
			s.streams[m] = append(s.streams[m], cfsm.Epsilon)
			return nil
		}
		s.cfg[m] = t.To
		if !t.Internal() {
			s.streams[m] = append(s.streams[m], t.Output)
			return nil
		}
		k := queueKey(m, t.Dest)
		s.queues[k] = append(s.queues[k], t.Output)
		return nil
	}

	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		progressed := false
		// Event class 1: apply the next script input at some port.
		for port := 0; port < sys.N(); port++ {
			if s.pos[port] >= len(script.Inputs[port]) {
				continue
			}
			progressed = true
			steps++
			if steps > exploreLimit {
				return nil, fmt.Errorf("async: queued exploration exceeded %d steps", exploreLimit)
			}
			n := s.clone()
			n.pos[port]++
			if err := step(&n, port, script.Inputs[port][s.pos[port]]); err != nil {
				return nil, err
			}
			if key := n.encode(); !visited[key] {
				visited[key] = true
				stack = append(stack, n)
			}
		}
		// Event class 2: deliver the head of some non-empty queue.
		for from := 0; from < sys.N(); from++ {
			for to := 0; to < sys.N(); to++ {
				q := s.queues[queueKey(from, to)]
				if len(q) == 0 {
					continue
				}
				progressed = true
				steps++
				if steps > exploreLimit {
					return nil, fmt.Errorf("async: queued exploration exceeded %d steps", exploreLimit)
				}
				n := s.clone()
				k := queueKey(from, to)
				msg := n.queues[k][0]
				n.queues[k] = n.queues[k][1:]
				if len(n.queues[k]) == 0 {
					delete(n.queues, k)
				}
				t, ok := sys.Machine(to).Lookup(n.cfg[to], msg)
				switch {
				case !ok:
					n.streams[to] = append(n.streams[to], cfsm.Epsilon)
				case t.Internal():
					return nil, fmt.Errorf("%w: delivery of %q to %s", cfsm.ErrChainedInternal, msg, sys.Machine(to).Name())
				default:
					n.cfg[to] = t.To
					n.streams[to] = append(n.streams[to], t.Output)
				}
				if key := n.encode(); !visited[key] {
					visited[key] = true
					stack = append(stack, n)
				}
			}
		}
		if !progressed {
			o := Outcome{Streams: s.streams}
			outcomes[o.Key()] = o
		}
	}
	return outcomes, nil
}

// PossibleQueued reports whether the system admits the observed outcome for
// the script under the queued semantics.
func PossibleQueued(sys *cfsm.System, script Script, observed Outcome) (bool, error) {
	set, err := OutcomesQueued(sys, script)
	if err != nil {
		return false, err
	}
	return set.Contains(observed), nil
}
