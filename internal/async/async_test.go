package async

import (
	"math/rand"
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/paper"
)

func figure1(t *testing.T) *cfsm.System {
	t.Helper()
	return paper.MustFigure1()
}

func TestOutcomesDeterministicScript(t *testing.T) {
	sys := figure1(t)
	// A single-port script has exactly one outcome.
	script := SinglePort(sys.N(), paper.M1, []cfsm.Symbol{"a", "c"})
	set, executed, err := Outcomes(sys, script)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if len(set) != 1 {
		t.Fatalf("single-port script has %d outcomes, want 1: %v", len(set), set.Keys())
	}
	// a^1 -> c'^1 (t1); c^1 -> t6 then t'1 -> a^2.
	want := Outcome{Streams: [][]cfsm.Symbol{{"c'"}, {"a"}, nil}}
	if !set.Contains(want) {
		t.Fatalf("outcome set %v missing %q", set.Keys(), want.Key())
	}
	if !executed[paper.Ref("M1", "t1")] || !executed[paper.Ref("M1", "t6")] {
		t.Errorf("executed set missing t1/t6: %v", executed)
	}
}

func TestOutcomesRace(t *testing.T) {
	sys := figure1(t)
	// Race: a at port 1 against c' at port 2. Port 2's response depends on
	// nothing from port 1 here, but both orders are explored; the streams
	// are the same in this case, so the outcome set stays a singleton.
	script := Script{Inputs: [][]cfsm.Symbol{{"a"}, {"c'"}, nil}}
	set, _, err := Outcomes(sys, script)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if len(set) != 1 {
		t.Fatalf("independent race should collapse to one outcome, got %v", set.Keys())
	}

	// A real race: c at port 1 (M1 forwards c' to M2) against d' at port 2.
	// Order c¹ then d'² yields the stream (a, b) at port 2; the reverse
	// order yields (b, a) — two distinct outcomes.
	script = Script{Inputs: [][]cfsm.Symbol{{"c"}, {"d'"}, nil}}
	set, _, err = Outcomes(sys, script)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if len(set) != 2 {
		t.Fatalf("racing script should have 2 outcomes, got %v", set.Keys())
	}
}

func TestOutcomeHelpers(t *testing.T) {
	o := Outcome{Streams: [][]cfsm.Symbol{{"a", "b"}, nil}}
	p := Outcome{Streams: [][]cfsm.Symbol{{"a", "b"}, nil}}
	q := Outcome{Streams: [][]cfsm.Symbol{{"a"}, {"b"}}}
	if !o.Equal(p) || o.Equal(q) {
		t.Error("Outcome.Equal misbehaves")
	}
	s := OutcomeSet{o.Key(): o}
	if !s.Contains(p) || s.Contains(q) {
		t.Error("OutcomeSet.Contains misbehaves")
	}
	script := Script{Inputs: [][]cfsm.Symbol{{"a"}, {"b", "c"}}}
	if script.TotalInputs() != 3 {
		t.Errorf("TotalInputs = %d", script.TotalInputs())
	}
}

func TestOutcomesValidation(t *testing.T) {
	sys := figure1(t)
	if _, _, err := Outcomes(sys, Script{Inputs: [][]cfsm.Symbol{{"a"}}}); err == nil {
		t.Error("want error for port-count mismatch")
	}
}

func TestRandomOracleReproducible(t *testing.T) {
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatalf("FaultyImplementation: %v", err)
	}
	script := Script{Inputs: [][]cfsm.Symbol{{"a", "c"}, {"c'"}, {"c'"}}}
	a := &RandomOracle{Sys: iut, Rng: rand.New(rand.NewSource(7))}
	b := &RandomOracle{Sys: iut, Rng: rand.New(rand.NewSource(7))}
	oa, err := a.Execute(script)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	ob, err := b.Execute(script)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !oa.Equal(ob) {
		t.Fatalf("same seed, different outcomes: %q vs %q", oa.Key(), ob.Key())
	}
	if a.Scripts != 1 || a.Inputs != script.TotalInputs() {
		t.Errorf("counters = %d/%d", a.Scripts, a.Inputs)
	}
	// The oracle's outcome must be a member of the possible set.
	set, _, err := Outcomes(iut, script)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if !set.Contains(oa) {
		t.Fatalf("oracle produced impossible outcome %q (possible: %v)", oa.Key(), set.Keys())
	}
}

func TestConformingImplementationNotDetected(t *testing.T) {
	sys := figure1(t)
	scripts := []Script{
		{Inputs: [][]cfsm.Symbol{{"a", "c"}, {"c'"}, {"c'", "v"}}},
	}
	oracle := &RandomOracle{Sys: sys, Rng: rand.New(rand.NewSource(3))}
	loc, err := Diagnose(sys, scripts, oracle)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if loc.Verdict != core.VerdictNoFault {
		t.Fatalf("verdict = %v, want no fault", loc.Verdict)
	}
}

// TestAsyncDiagnosisPaperFault: the paper's transfer fault in t"4 is
// detected by an unsynchronized script whose observation is impossible under
// the specification, and localized with single-port probes.
func TestAsyncDiagnosisPaperFault(t *testing.T) {
	spec := figure1(t)
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatalf("FaultyImplementation: %v", err)
	}
	// Drive M3 through t"1 then t"4 twice at its own port: the faulty
	// implementation lands in s0 after the first v and answers ε to the
	// second — impossible for the spec regardless of interleavings.
	scripts := []Script{
		{Inputs: [][]cfsm.Symbol{nil, nil, {"c'", "v", "v"}}},
		{Inputs: [][]cfsm.Symbol{{"a"}, {"c'"}, {"c'", "v"}}},
	}
	oracle := &RandomOracle{Sys: iut, Rng: rand.New(rand.NewSource(11))}
	loc, err := Diagnose(spec, scripts, oracle)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if !loc.Analysis.Detected {
		t.Fatal("the faulty outcome should be impossible under the spec")
	}
	if loc.Verdict != core.VerdictLocalized {
		t.Fatalf("verdict = %v (remaining %v)", loc.Verdict, loc.Remaining)
	}
	want := fault.Fault{Ref: paper.FaultRef, Kind: fault.KindTransfer, To: "s0"}
	if *loc.Localized != want {
		t.Fatalf("localized = %+v, want %+v", *loc.Localized, want)
	}
	if len(loc.Probes) == 0 {
		t.Error("expected single-port probes")
	}
}

// TestPropertyOracleOutcomeAlwaysPossible: whatever interleaving the random
// oracle picks, the produced outcome is a member of the exhaustively
// enumerated outcome set — the soundness basis of the conservative analysis.
func TestPropertyOracleOutcomeAlwaysPossible(t *testing.T) {
	sys := figure1(t)
	symbols := [][]cfsm.Symbol{
		{"a", "c", "b"},
		{"c'", "d'"},
		{"c'", "v", "u"},
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Random sub-script of the symbol pools above.
		script := Script{Inputs: make([][]cfsm.Symbol, sys.N())}
		for p := range script.Inputs {
			n := rng.Intn(len(symbols[p]) + 1)
			script.Inputs[p] = symbols[p][:n]
		}
		set, _, err := Outcomes(sys, script)
		if err != nil {
			t.Fatalf("seed %d: Outcomes: %v", seed, err)
		}
		oracle := &RandomOracle{Sys: sys, Rng: rng}
		for run := 0; run < 5; run++ {
			o, err := oracle.Execute(script)
			if err != nil {
				t.Fatalf("seed %d: Execute: %v", seed, err)
			}
			if !set.Contains(o) {
				t.Fatalf("seed %d: oracle outcome %q not in the possible set %v",
					seed, o.Key(), set.Keys())
			}
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	sys := figure1(t)
	if _, err := Analyze(sys, []Script{{Inputs: make([][]cfsm.Symbol, 3)}}, nil); err == nil {
		t.Error("want error for missing outcomes")
	}
}
