package async

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/paper"
)

func TestOutcomesQueuedContainsAtomic(t *testing.T) {
	// The queued semantics can always deliver immediately, so every atomic
	// outcome must be queued-possible.
	sys := paper.MustFigure1()
	scripts := []Script{
		{Inputs: [][]cfsm.Symbol{{"a", "c"}, {"c'"}, {"c'", "v"}}},
		{Inputs: [][]cfsm.Symbol{{"c"}, {"d'"}, nil}},
		{Inputs: [][]cfsm.Symbol{{"a", "f"}, {"c'", "t"}, {"x"}}},
	}
	for i, script := range scripts {
		atomic, _, err := Outcomes(sys, script)
		if err != nil {
			t.Fatalf("script %d: Outcomes: %v", i, err)
		}
		queued, err := OutcomesQueued(sys, script)
		if err != nil {
			t.Fatalf("script %d: OutcomesQueued: %v", i, err)
		}
		for key := range atomic {
			if _, ok := queued[key]; !ok {
				t.Errorf("script %d: atomic outcome %q missing from queued set %v",
					i, key, queued.Keys())
			}
		}
	}
}

// TestQueuedEqualsAtomicOnChainRestrictedSystems documents an empirical
// finding: for systems satisfying the paper's internal-chain restriction
// (one message per input, one hop), the queued and atomic semantics admit
// the same per-port outcome sets on every script we test. In other words,
// the synchronization assumption costs nothing observationally here — the
// justification behind the paper's modeling choice.
func TestQueuedEqualsAtomicOnChainRestrictedSystems(t *testing.T) {
	sys := paper.MustFigure1()
	scripts := []Script{
		{Inputs: [][]cfsm.Symbol{{"a", "c"}, {"c'", "d'"}, {"c'"}}},
		{Inputs: [][]cfsm.Symbol{{"c"}, {"d'"}, {"v"}}},
		{Inputs: [][]cfsm.Symbol{{"a", "f"}, {"t"}, {"c'", "x"}}},
		{Inputs: [][]cfsm.Symbol{{"e"}, {"q"}, {"d'"}}},
	}
	for i, script := range scripts {
		atomic, _, err := Outcomes(sys, script)
		if err != nil {
			t.Fatalf("script %d: Outcomes: %v", i, err)
		}
		queued, err := OutcomesQueued(sys, script)
		if err != nil {
			t.Fatalf("script %d: OutcomesQueued: %v", i, err)
		}
		if len(atomic) != len(queued) {
			t.Errorf("script %d: atomic %d outcomes, queued %d:\n atomic %v\n queued %v",
				i, len(atomic), len(queued), atomic.Keys(), queued.Keys())
			continue
		}
		for key := range atomic {
			if _, ok := queued[key]; !ok {
				t.Errorf("script %d: sets differ at %q", i, key)
			}
		}
	}
}

func TestPossibleQueued(t *testing.T) {
	sys := paper.MustFigure1()
	script := SinglePort(sys.N(), paper.M1, []cfsm.Symbol{"a"})
	ok, err := PossibleQueued(sys, script, Outcome{Streams: [][]cfsm.Symbol{{"c'"}, nil, nil}})
	if err != nil || !ok {
		t.Fatalf("PossibleQueued = %v %v, want true", ok, err)
	}
	ok, err = PossibleQueued(sys, script, Outcome{Streams: [][]cfsm.Symbol{{"d'"}, nil, nil}})
	if err != nil || ok {
		t.Fatalf("PossibleQueued(bad) = %v %v, want false", ok, err)
	}
}

func TestOutcomesQueuedValidation(t *testing.T) {
	sys := paper.MustFigure1()
	if _, err := OutcomesQueued(sys, Script{Inputs: [][]cfsm.Symbol{{"a"}}}); err == nil {
		t.Error("want error for port-count mismatch")
	}
}

// BenchmarkOutcomesQueued exercises the queued-semantics exploration on a
// racy Figure 1 script; run with -benchmem to watch the per-exploration
// allocation count the integer queue keys are guarding.
func BenchmarkOutcomesQueued(b *testing.B) {
	sys := paper.MustFigure1()
	script := Script{Inputs: [][]cfsm.Symbol{{"a", "f"}, {"c'", "t"}, {"x"}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OutcomesQueued(sys, script); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOutcomesQueuedAllocationBudget pins the exploration's allocation count
// so a regression back to formatted (allocating) queue keys fails loudly:
// with string keys this exploration costs ~50% more allocations.
func TestOutcomesQueuedAllocationBudget(t *testing.T) {
	sys := paper.MustFigure1()
	script := Script{Inputs: [][]cfsm.Symbol{{"a", "f"}, {"c'", "t"}, {"x"}}}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := OutcomesQueued(sys, script); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 2600 // measured 2326 with integer keys; string keys blow well past this
	if allocs > budget {
		t.Errorf("OutcomesQueued allocations = %.0f, budget %d", allocs, budget)
	}
	t.Logf("OutcomesQueued allocations = %.0f", allocs)
}
