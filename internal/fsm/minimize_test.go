package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// redundant builds a machine where s1 and s2 are equivalent:
//
//	r1: s0 -a/x-> s1   r2: s0 -b/x-> s2
//	r3: s1 -a/y-> s0   r4: s2 -a/y-> s0
func redundant(t *testing.T) *FSM {
	t.Helper()
	m, err := New("R", "s0", []State{"s0", "s1", "s2"}, []Transition{
		{Name: "r1", From: "s0", Input: "a", Output: "x", To: "s1"},
		{Name: "r2", From: "s0", Input: "b", Output: "x", To: "s2"},
		{Name: "r3", From: "s1", Input: "a", Output: "y", To: "s0"},
		{Name: "r4", From: "s2", Input: "a", Output: "y", To: "s0"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestMinimizeMergesEquivalentStates(t *testing.T) {
	m := redundant(t)
	min, mapping := m.Minimize()
	if got := len(min.States()); got != 2 {
		t.Fatalf("minimized to %d states, want 2: %v", got, min.States())
	}
	if mapping["s1"] != mapping["s2"] {
		t.Errorf("s1 and s2 should map to the same representative: %v", mapping)
	}
	if mapping["s0"] == mapping["s1"] {
		t.Errorf("s0 must stay distinct: %v", mapping)
	}
	if m.IsMinimal() {
		t.Error("redundant machine reported minimal")
	}
	if !min.IsMinimal() {
		t.Error("minimized machine reported non-minimal")
	}
}

func TestMinimizePreservesBehaviour(t *testing.T) {
	m := redundant(t)
	min, mapping := m.Minimize()
	rng := rand.New(rand.NewSource(9))
	inputs := m.Inputs()
	for trial := 0; trial < 200; trial++ {
		seq := make([]Symbol, 1+rng.Intn(8))
		for i := range seq {
			seq[i] = inputs[rng.Intn(len(inputs))]
		}
		a, endA := m.Run(m.Initial(), seq)
		b, endB := min.Run(min.Initial(), seq)
		if !symbolsEqual(a, b) {
			t.Fatalf("behaviour changed on %v: %v vs %v", seq, a, b)
		}
		if mapping[endA] != endB {
			t.Fatalf("end state mismatch on %v: %v→%v vs %v", seq, endA, mapping[endA], endB)
		}
	}
}

func TestMinimizeAlreadyMinimal(t *testing.T) {
	m := threeState(t) // distinct behaviours per state
	min, _ := m.Minimize()
	if len(min.States()) != len(m.States()) {
		t.Fatalf("minimal machine shrank: %v", min.States())
	}
	if !m.IsMinimal() {
		t.Error("minimal machine reported non-minimal")
	}
}

// TestMinimizeProperty: for random machines, minimization preserves the
// output behaviour from the initial state.
func TestMinimizeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMachine(rng)
		min, _ := m.Minimize()
		inputs := m.Inputs()
		if len(inputs) == 0 {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			seq := make([]Symbol, 1+rng.Intn(10))
			for i := range seq {
				seq[i] = inputs[rng.Intn(len(inputs))]
			}
			a, _ := m.Run(m.Initial(), seq)
			b, _ := min.Run(min.Initial(), seq)
			if !symbolsEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomMachine builds a small random partial machine.
func randomMachine(rng *rand.Rand) *FSM {
	nStates := 2 + rng.Intn(4)
	states := make([]State, nStates)
	for i := range states {
		states[i] = State(string(rune('A' + i)))
	}
	inputs := []Symbol{"i0", "i1", "i2"}
	outputs := []Symbol{"o0", "o1"}
	var trans []Transition
	n := 0
	for _, s := range states {
		for _, in := range inputs {
			if rng.Float64() < 0.3 {
				continue
			}
			n++
			trans = append(trans, Transition{
				Name:   "t" + string(rune('0'+n%10)) + string(rune('a'+n/10)),
				From:   s,
				Input:  in,
				Output: outputs[rng.Intn(len(outputs))],
				To:     states[rng.Intn(nStates)],
			})
		}
	}
	m, err := New("rand", states[0], states, trans)
	if err != nil {
		panic(err)
	}
	return m
}

func TestUIO(t *testing.T) {
	m := threeState(t)
	// In threeState: s0 on c is undefined, s2 on c defined with z.
	for _, s := range m.States() {
		seq, ok := m.UIO(s)
		if !ok {
			t.Errorf("no UIO for %v", s)
			continue
		}
		// Verify uniqueness: the output from s differs from every other state.
		out, _ := m.Run(s, seq)
		for _, o := range m.States() {
			if o == s {
				continue
			}
			oOut, _ := m.Run(o, seq)
			if symbolsEqual(out, oOut) {
				t.Errorf("UIO(%v) = %v does not separate %v", s, seq, o)
			}
		}
	}
}

func TestUIOEquivalentStates(t *testing.T) {
	m := redundant(t)
	// s1 and s2 are equivalent, so neither has a UIO.
	if _, ok := m.UIO("s1"); ok {
		t.Error("s1 has an equivalent twin and must have no UIO")
	}
	if _, ok := m.UIO("s2"); ok {
		t.Error("s2 has an equivalent twin and must have no UIO")
	}
	// s0 is separated from both by input b (defined in s0 only).
	if _, ok := m.UIO("s0"); !ok {
		t.Error("s0 should have a UIO")
	}
}

func TestUIOSingleState(t *testing.T) {
	m, err := New("S", "s0", []State{"s0"}, []Transition{
		{Name: "t", From: "s0", Input: "a", Output: "x", To: "s0"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	seq, ok := m.UIO("s0")
	if !ok || len(seq) != 0 {
		t.Errorf("UIO of the only state = %v/%v, want empty/true", seq, ok)
	}
}
