package fsm

import (
	"strings"
	"testing"
)

// threeState builds the small machine used across the unit tests:
//
//	ta: s0 -a/x-> s1    tb: s1 -b/y-> s2    tc: s2 -c/z-> s0
//	td: s0 -b/y-> s0    te: s1 -a/x-> s1
func threeState(t *testing.T) *FSM {
	t.Helper()
	m, err := New("M", "s0", []State{"s0", "s1", "s2"}, []Transition{
		{Name: "ta", From: "s0", Input: "a", Output: "x", To: "s1"},
		{Name: "tb", From: "s1", Input: "b", Output: "y", To: "s2"},
		{Name: "tc", From: "s2", Input: "c", Output: "z", To: "s0"},
		{Name: "td", From: "s0", Input: "b", Output: "y", To: "s0"},
		{Name: "te", From: "s1", Input: "a", Output: "x", To: "s1"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	valid := []Transition{{Name: "t1", From: "s0", Input: "a", Output: "x", To: "s1"}}
	tests := []struct {
		name    string
		machine string
		initial State
		states  []State
		trans   []Transition
		wantErr string
	}{
		{
			name:    "valid machine",
			machine: "M", initial: "s0", states: []State{"s0", "s1"}, trans: valid,
		},
		{
			name:    "empty machine name",
			machine: "", initial: "s0", states: []State{"s0"},
			wantErr: "name must not be empty",
		},
		{
			name:    "no states",
			machine: "M", initial: "s0", states: nil,
			wantErr: "at least one state",
		},
		{
			name:    "duplicate state",
			machine: "M", initial: "s0", states: []State{"s0", "s0"},
			wantErr: "duplicate state",
		},
		{
			name:    "initial not declared",
			machine: "M", initial: "s9", states: []State{"s0"},
			wantErr: "initial state",
		},
		{
			name:    "unnamed transition",
			machine: "M", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{From: "s0", Input: "a", Output: "x", To: "s0"}},
			wantErr: "no name",
		},
		{
			name:    "duplicate transition name",
			machine: "M", initial: "s0", states: []State{"s0"},
			trans: []Transition{
				{Name: "t", From: "s0", Input: "a", Output: "x", To: "s0"},
				{Name: "t", From: "s0", Input: "b", Output: "x", To: "s0"},
			},
			wantErr: "duplicate transition name",
		},
		{
			name:    "undeclared source state",
			machine: "M", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{Name: "t", From: "s9", Input: "a", Output: "x", To: "s0"}},
			wantErr: "undeclared state",
		},
		{
			name:    "undeclared destination state",
			machine: "M", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{Name: "t", From: "s0", Input: "a", Output: "x", To: "s9"}},
			wantErr: "undeclared state",
		},
		{
			name:    "empty input symbol",
			machine: "M", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{Name: "t", From: "s0", Input: "", Output: "x", To: "s0"}},
			wantErr: "empty symbol",
		},
		{
			name:    "reserved epsilon symbol",
			machine: "M", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{Name: "t", From: "s0", Input: Epsilon, Output: "x", To: "s0"}},
			wantErr: "reserved symbol",
		},
		{
			name:    "nondeterminism",
			machine: "M", initial: "s0", states: []State{"s0", "s1"},
			trans: []Transition{
				{Name: "t1", From: "s0", Input: "a", Output: "x", To: "s0"},
				{Name: "t2", From: "s0", Input: "a", Output: "y", To: "s1"},
			},
			wantErr: "nondeterminism",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.machine, tc.initial, tc.states, tc.trans)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New: got error %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	m := threeState(t)
	if m.Name() != "M" {
		t.Errorf("Name() = %q, want M", m.Name())
	}
	if m.Initial() != "s0" {
		t.Errorf("Initial() = %q, want s0", m.Initial())
	}
	if got := m.States(); len(got) != 3 || got[0] != "s0" || got[2] != "s2" {
		t.Errorf("States() = %v, want sorted [s0 s1 s2]", got)
	}
	if got := m.Inputs(); len(got) != 3 {
		t.Errorf("Inputs() = %v, want 3 symbols", got)
	}
	if got := m.Outputs(); len(got) != 3 {
		t.Errorf("Outputs() = %v, want 3 symbols", got)
	}
	if m.NumTransitions() != 5 {
		t.Errorf("NumTransitions() = %d, want 5", m.NumTransitions())
	}
	if !m.HasState("s1") || m.HasState("s9") {
		t.Errorf("HasState misclassified a state")
	}
	if _, ok := m.ByName("tb"); !ok {
		t.Errorf("ByName(tb) not found")
	}
	if _, ok := m.ByName("zz"); ok {
		t.Errorf("ByName(zz) unexpectedly found")
	}
	tr, ok := m.Lookup("s1", "b")
	if !ok || tr.Name != "tb" {
		t.Errorf("Lookup(s1,b) = %v,%v, want tb", tr, ok)
	}
}

func TestTransitionsSortedAndCopied(t *testing.T) {
	m := threeState(t)
	ts := m.Transitions()
	if len(ts) != 5 {
		t.Fatalf("Transitions() returned %d, want 5", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1].From > ts[i].From ||
			(ts[i-1].From == ts[i].From && ts[i-1].Input > ts[i].Input) {
			t.Fatalf("Transitions() not sorted at %d: %v then %v", i, ts[i-1], ts[i])
		}
	}
	ts[0].Name = "mutated"
	if tr, _ := m.Lookup(ts[0].From, ts[0].Input); tr.Name == "mutated" {
		t.Fatal("Transitions() exposed internal state")
	}
}

func TestStepAndRun(t *testing.T) {
	m := threeState(t)
	out, next, tr, ok := m.Step("s0", "a")
	if !ok || out != "x" || next != "s1" || tr.Name != "ta" {
		t.Fatalf("Step(s0,a) = %v %v %v %v", out, next, tr, ok)
	}
	// Undefined input: epsilon, state unchanged.
	out, next, _, ok = m.Step("s0", "c")
	if ok || out != Epsilon || next != "s0" {
		t.Fatalf("Step(s0,c) = %v %v %v, want ε s0 false", out, next, ok)
	}
	outs, end := m.Run("s0", []Symbol{"a", "b", "c", "z"})
	want := []Symbol{"x", "y", "z", Epsilon}
	if !symbolsEqual(outs, want) || end != "s0" {
		t.Fatalf("Run = %v end %v, want %v end s0", outs, end, want)
	}
}

func TestTrace(t *testing.T) {
	m := threeState(t)
	trace, end := m.Trace("s0", []Symbol{"a", "zz", "b"})
	if len(trace) != 2 || trace[0].Name != "ta" || trace[1].Name != "tb" || end != "s2" {
		t.Fatalf("Trace = %v end %v", trace, end)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := threeState(t)
	c := m.Clone()
	rewired, err := c.Rewire("ta", "q", "s2")
	if err != nil {
		t.Fatalf("Rewire: %v", err)
	}
	if tr, _ := m.Lookup("s0", "a"); tr.Output != "x" || tr.To != "s1" {
		t.Fatal("Rewire of a clone mutated the original")
	}
	if tr, _ := rewired.Lookup("s0", "a"); tr.Output != "q" || tr.To != "s2" {
		t.Fatalf("Rewire result not applied: %v", tr)
	}
}

func TestRewire(t *testing.T) {
	m := threeState(t)
	t.Run("output only", func(t *testing.T) {
		r, err := m.Rewire("ta", "q", "")
		if err != nil {
			t.Fatalf("Rewire: %v", err)
		}
		tr, _ := r.Lookup("s0", "a")
		if tr.Output != "q" || tr.To != "s1" {
			t.Fatalf("got %v", tr)
		}
		found := false
		for _, o := range r.Outputs() {
			if o == "q" {
				found = true
			}
		}
		if !found {
			t.Fatal("output alphabet not recomputed")
		}
	})
	t.Run("state only", func(t *testing.T) {
		r, err := m.Rewire("ta", "", "s2")
		if err != nil {
			t.Fatalf("Rewire: %v", err)
		}
		tr, _ := r.Lookup("s0", "a")
		if tr.Output != "x" || tr.To != "s2" {
			t.Fatalf("got %v", tr)
		}
	})
	t.Run("unknown transition", func(t *testing.T) {
		if _, err := m.Rewire("nope", "q", ""); err == nil {
			t.Fatal("want error for unknown transition")
		}
	})
	t.Run("unknown state", func(t *testing.T) {
		if _, err := m.Rewire("ta", "", "s9"); err == nil {
			t.Fatal("want error for unknown state")
		}
	})
}

func TestTransitionString(t *testing.T) {
	tr := Transition{Name: "t7", From: "s2", Input: "b", Output: "d'", To: "s0"}
	if got, want := tr.String(), "t7: s2 -b/d'-> s0"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	anon := Transition{From: "s0", Input: "a", Output: "x", To: "s1"}
	if !strings.HasPrefix(anon.String(), "?:") {
		t.Errorf("anonymous transition should render with ?: got %q", anon.String())
	}
}

func TestDOT(t *testing.T) {
	m := threeState(t)
	dot := m.DOT()
	for _, want := range []string{"digraph", `"s0"`, `"s1"`, `"s2"`, "ta: a/x", "__start"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT() missing %q in:\n%s", want, dot)
		}
	}
}
