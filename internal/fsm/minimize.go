package fsm

import (
	"fmt"
	"sort"
	"strings"
)

// Minimize returns an observationally equivalent machine with equivalent
// states merged, together with the mapping from original states to the
// representative state that replaced them. Partial machines are handled by
// treating "undefined" as a distinct observable behaviour (the Epsilon
// output), consistent with the simulator.
//
// The construction is classical partition refinement: states start grouped
// by their one-step output signature and groups split until stable; each
// final group is represented by its lexicographically smallest member.
// Unreachable states are preserved (they keep their own groups), so the
// result is a pure quotient; callers who also want to drop unreachable
// states can filter with Reachable.
func (m *FSM) Minimize() (*FSM, map[State]State) {
	// Initial partition: by output signature over the full input alphabet.
	signature := func(s State, class map[State]int) string {
		var b strings.Builder
		for _, in := range m.inputs {
			t, ok := m.Lookup(s, in)
			if !ok {
				b.WriteString("|ε")
				continue
			}
			if class == nil {
				fmt.Fprintf(&b, "|%s", t.Output)
			} else {
				fmt.Fprintf(&b, "|%s>%d", t.Output, class[t.To])
			}
		}
		return b.String()
	}

	class := make(map[State]int, len(m.states))
	assign := func(sig func(State) string) int {
		groups := make(map[string]int)
		next := make(map[State]int, len(m.states))
		for _, s := range m.states {
			k := sig(s)
			id, ok := groups[k]
			if !ok {
				id = len(groups)
				groups[k] = id
			}
			next[s] = id
		}
		class = next
		return len(groups)
	}

	n := assign(func(s State) string { return signature(s, nil) })
	for {
		prev := n
		// Moore refinement: the new class key includes the old class, so
		// the partition only ever refines and the loop terminates.
		old := class
		n = assign(func(s State) string {
			return fmt.Sprintf("%d%s", old[s], signature(s, old))
		})
		if n == prev {
			break
		}
	}

	// Representative per class: smallest state name.
	rep := make(map[int]State)
	for _, s := range m.states {
		c := class[s]
		if r, ok := rep[c]; !ok || s < r {
			rep[c] = s
		}
	}
	mapping := make(map[State]State, len(m.states))
	for _, s := range m.states {
		mapping[s] = rep[class[s]]
	}

	stateSet := make(map[State]bool)
	var states []State
	for _, r := range rep {
		if !stateSet[r] {
			stateSet[r] = true
			states = append(states, r)
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })

	var transitions []Transition
	seen := make(map[Key]bool)
	for _, t := range m.Transitions() {
		nt := Transition{
			Name:   t.Name,
			From:   mapping[t.From],
			Input:  t.Input,
			Output: t.Output,
			To:     mapping[t.To],
		}
		k := Key{From: nt.From, Input: nt.Input}
		if seen[k] {
			continue // merged with an equivalent transition
		}
		seen[k] = true
		transitions = append(transitions, nt)
	}

	min, err := New(m.name+"-min", mapping[m.initial], states, transitions)
	if err != nil {
		// The quotient of a valid machine is valid; a failure here is a
		// construction bug, surfaced loudly in tests.
		panic(fmt.Sprintf("fsm: minimize produced invalid machine: %v", err))
	}
	return min, mapping
}

// IsMinimal reports whether no two distinct states are equivalent.
func (m *FSM) IsMinimal() bool {
	min, _ := m.Minimize()
	return len(min.States()) == len(m.states)
}

// UIO returns a unique input/output sequence for the state: an input
// sequence whose output from the given state differs from the outputs
// produced from every other state of the machine. ok is false when the
// state has no UIO (some other state is equivalent, or no single sequence
// separates it from all others).
//
// The search walks pairs (current state of the candidate, set of states
// still producing the same outputs); a sequence is a UIO when the set
// empties.
func (m *FSM) UIO(s State) (seq []Symbol, ok bool) {
	type node struct {
		cur  State
		rest []State // still-matching shadows, sorted
		path []Symbol
	}
	encode := func(cur State, rest []State) string {
		parts := make([]string, 0, len(rest)+1)
		parts = append(parts, string(cur))
		for _, r := range rest {
			parts = append(parts, string(r))
		}
		return strings.Join(parts, "|")
	}
	var initialRest []State
	for _, o := range m.states {
		if o != s {
			initialRest = append(initialRest, o)
		}
	}
	if len(initialRest) == 0 {
		return nil, true // a one-state machine: the empty sequence is a UIO
	}
	start := node{cur: s, rest: initialRest}
	visited := map[string]bool{encode(start.cur, start.rest): true}
	frontier := []node{start}
	const limit = 100_000
	for len(frontier) > 0 && len(visited) < limit {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range m.inputs {
			out, next, _, _ := m.Step(n.cur, in)
			var rest []State
			for _, o := range n.rest {
				oOut, oNext, _, _ := m.Step(o, in)
				if oOut == out {
					rest = append(rest, oNext)
				}
			}
			sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
			rest = dedupStates(rest)
			path := append(append([]Symbol(nil), n.path...), in)
			if len(rest) == 0 {
				return path, true
			}
			k := encode(next, rest)
			if visited[k] {
				continue
			}
			visited[k] = true
			frontier = append(frontier, node{cur: next, rest: rest, path: path})
		}
	}
	return nil, false
}

func dedupStates(states []State) []State {
	out := states[:0]
	for i, s := range states {
		if i == 0 || states[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
