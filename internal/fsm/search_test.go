package fsm

import (
	"testing"
)

// ring builds a machine whose states form a directed ring with a chord:
//
//	r0 -a-> r1 -a-> r2 -a-> r0, plus r0 -b-> r2, with distinct outputs per state.
func ring(t *testing.T) *FSM {
	t.Helper()
	m, err := New("R", "r0", []State{"r0", "r1", "r2"}, []Transition{
		{Name: "t01", From: "r0", Input: "a", Output: "o0", To: "r1"},
		{Name: "t12", From: "r1", Input: "a", Output: "o1", To: "r2"},
		{Name: "t20", From: "r2", Input: "a", Output: "o2", To: "r0"},
		{Name: "t02", From: "r0", Input: "b", Output: "o0", To: "r2"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestReachable(t *testing.T) {
	m := ring(t)
	got := m.Reachable("r0", nil)
	if len(got) != 3 {
		t.Fatalf("Reachable(r0) = %v, want all 3 states", got)
	}
	// Avoiding t01 and t02 pins the machine in r0.
	avoid := func(tr Transition) bool { return tr.From == "r0" }
	got = m.Reachable("r0", avoid)
	if len(got) != 1 || !got["r0"] {
		t.Fatalf("Reachable(r0, avoid-from-r0) = %v, want {r0}", got)
	}
}

func TestStronglyConnected(t *testing.T) {
	if !ring(t).StronglyConnected() {
		t.Error("ring should be strongly connected")
	}
	m, err := New("L", "s0", []State{"s0", "s1"}, []Transition{
		{Name: "t", From: "s0", Input: "a", Output: "x", To: "s1"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.StronglyConnected() {
		t.Error("a one-way machine must not be strongly connected")
	}
}

func TestTransferSequence(t *testing.T) {
	m := ring(t)
	tests := []struct {
		name     string
		from, to State
		avoid    Avoid
		wantSeq  []Symbol
		wantOK   bool
	}{
		{name: "identity", from: "r0", to: "r0", wantSeq: nil, wantOK: true},
		{name: "direct chord", from: "r0", to: "r2", wantSeq: []Symbol{"b"}, wantOK: true},
		{name: "one hop", from: "r0", to: "r1", wantSeq: []Symbol{"a"}, wantOK: true},
		{
			name: "chord avoided takes the long way",
			from: "r0", to: "r2",
			avoid:   func(tr Transition) bool { return tr.Name == "t02" },
			wantSeq: []Symbol{"a", "a"}, wantOK: true,
		},
		{
			name: "fully blocked",
			from: "r0", to: "r2",
			avoid:  func(tr Transition) bool { return tr.From == "r0" },
			wantOK: false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			seq, ok := m.TransferSequence(tc.from, tc.to, tc.avoid)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if !symbolsEqual(seq, tc.wantSeq) {
				t.Fatalf("seq = %v, want %v", seq, tc.wantSeq)
			}
			// The returned sequence must really land in the target state.
			_, end := m.Run(tc.from, seq)
			if end != tc.to {
				t.Fatalf("sequence %v from %v ends in %v, want %v", seq, tc.from, end, tc.to)
			}
		})
	}
}

func TestDistinguishingSequence(t *testing.T) {
	m := ring(t)
	t.Run("same state is never distinguishable", func(t *testing.T) {
		if _, ok := m.DistinguishingSequence("r0", "r0", nil); ok {
			t.Fatal("a state must not be distinguishable from itself")
		}
	})
	t.Run("distinct outputs distinguish immediately", func(t *testing.T) {
		seq, ok := m.DistinguishingSequence("r0", "r1", nil)
		if !ok {
			t.Fatal("r0 and r1 should be distinguishable")
		}
		outA, _ := m.Run("r0", seq)
		outB, _ := m.Run("r1", seq)
		if symbolsEqual(outA, outB) {
			t.Fatalf("sequence %v does not distinguish: both yield %v", seq, outA)
		}
	})
	t.Run("defined versus undefined distinguishes", func(t *testing.T) {
		// Input b is defined only in r0.
		seq, ok := m.DistinguishingSequence("r1", "r0", nil)
		if !ok {
			t.Fatal("r1 and r0 should be distinguishable")
		}
		if len(seq) != 1 {
			t.Fatalf("expected a length-1 distinguishing sequence, got %v", seq)
		}
	})
	t.Run("equivalent states", func(t *testing.T) {
		m2, err := New("E", "s0", []State{"s0", "s1"}, []Transition{
			{Name: "a0", From: "s0", Input: "a", Output: "x", To: "s1"},
			{Name: "a1", From: "s1", Input: "a", Output: "x", To: "s0"},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, ok := m2.DistinguishingSequence("s0", "s1", nil); ok {
			t.Fatal("s0 and s1 are equivalent; no distinguishing sequence should exist")
		}
		if !m2.Equivalent("s0", "s1") {
			t.Fatal("Equivalent(s0,s1) should be true")
		}
	})
	t.Run("avoidance can destroy distinguishability", func(t *testing.T) {
		avoidAll := func(Transition) bool { return true }
		// With all transitions avoided every input is skipped, so nothing
		// can be applied and the states stay indistinct.
		if _, ok := m.DistinguishingSequence("r0", "r1", avoidAll); ok {
			t.Fatal("avoid-everything must make states indistinct")
		}
	})
}

func TestEquivalentReflexive(t *testing.T) {
	m := ring(t)
	for _, s := range m.States() {
		if !m.Equivalent(s, s) {
			t.Errorf("Equivalent(%v,%v) = false", s, s)
		}
	}
}

func TestCharacterizationSet(t *testing.T) {
	m := ring(t)
	w, indistinct := m.CharacterizationSet([]State{"r0", "r1", "r2"}, nil)
	if len(indistinct) != 0 {
		t.Fatalf("indistinct pairs: %v", indistinct)
	}
	if len(w) == 0 {
		t.Fatal("empty characterization set for distinguishable states")
	}
	// Every pair must be separated by at least one sequence in w.
	states := []State{"r0", "r1", "r2"}
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if !separatedBy(m, states[i], states[j], w) {
				t.Errorf("W does not separate %v and %v", states[i], states[j])
			}
		}
	}
}

func TestCharacterizationSetIndistinct(t *testing.T) {
	m, err := New("E", "s0", []State{"s0", "s1"}, []Transition{
		{Name: "a0", From: "s0", Input: "a", Output: "x", To: "s1"},
		{Name: "a1", From: "s1", Input: "a", Output: "x", To: "s0"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w, indistinct := m.CharacterizationSet([]State{"s0", "s1"}, nil)
	if len(w) != 0 {
		t.Errorf("w = %v, want empty", w)
	}
	if len(indistinct) != 1 {
		t.Fatalf("indistinct = %v, want one pair", indistinct)
	}
}
