package fsm

import (
	"sort"
	"strings"
)

// PresetDS searches for a preset distinguishing sequence: a single input
// sequence whose output sequences are pairwise distinct across all states of
// the machine. Machines with equivalent states have none; machines without
// equivalent states may still lack one (only adaptive sequences exist), in
// which case ok is false.
//
// The search runs over "current situations": partitions of the state set
// into blocks whose members have produced identical outputs so far, each
// block tracked by the multiset of successor states. A sequence is a preset
// DS when every block is a singleton. The classical worst case is
// exponential; the search is bounded and returns false when the bound is
// hit.
func (m *FSM) PresetDS() (seq []Symbol, ok bool) {
	if len(m.states) <= 1 {
		return nil, true
	}
	// A block is a set of (origin, current) pairs with identical output
	// history. origin identifies which start state the trace belongs to.
	type pair struct{ origin, cur State }
	type node struct {
		blocks [][]pair
		path   []Symbol
	}

	encode := func(blocks [][]pair) string {
		keys := make([]string, len(blocks))
		for i, blk := range blocks {
			parts := make([]string, len(blk))
			for j, p := range blk {
				parts[j] = string(p.origin) + ">" + string(p.cur)
			}
			sort.Strings(parts)
			keys[i] = strings.Join(parts, ",")
		}
		sort.Strings(keys)
		return strings.Join(keys, ";")
	}
	done := func(blocks [][]pair) bool {
		for _, blk := range blocks {
			if len(blk) > 1 {
				return false
			}
		}
		return true
	}

	var initial []pair
	for _, s := range m.states {
		initial = append(initial, pair{origin: s, cur: s})
	}
	start := node{blocks: [][]pair{initial}}
	visited := map[string]bool{encode(start.blocks): true}
	frontier := []node{start}
	const limit = 50_000
	for len(frontier) > 0 && len(visited) < limit {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range m.inputs {
			// Apply the input to every block; blocks split by output.
			var next [][]pair
			valid := true
			for _, blk := range n.blocks {
				split := make(map[Symbol][]pair)
				for _, p := range blk {
					out, to, _, _ := m.Step(p.cur, in)
					split[out] = append(split[out], pair{origin: p.origin, cur: to})
				}
				for _, sub := range split {
					// Two origins merging into the same current state with
					// identical history can never be separated afterwards:
					// the input is useless for this block.
					seen := make(map[State]bool, len(sub))
					for _, p := range sub {
						if seen[p.cur] && len(sub) > 1 {
							valid = false
						}
						seen[p.cur] = true
					}
					next = append(next, sub)
				}
				if !valid {
					break
				}
			}
			if !valid {
				continue
			}
			path := append(append([]Symbol(nil), n.path...), in)
			if done(next) {
				return path, true
			}
			k := encode(next)
			if visited[k] {
				continue
			}
			visited[k] = true
			frontier = append(frontier, node{blocks: next, path: path})
		}
	}
	return nil, false
}

// VerifyPresetDS reports whether the sequence is a valid preset
// distinguishing sequence for the machine.
func (m *FSM) VerifyPresetDS(seq []Symbol) bool {
	outputs := make(map[string]bool, len(m.states))
	for _, s := range m.states {
		outs, _ := m.Run(s, seq)
		key := joinSymbols(outs)
		if outputs[key] {
			return false
		}
		outputs[key] = true
	}
	return true
}
