package fsm

import "sort"

// Avoid is a predicate over transitions; a true result means the transition
// must not be exercised by a generated sequence. A nil Avoid forbids nothing.
//
// Step 6 of the diagnosis algorithm requires transfer sequences and
// characterization sequences "chosen in such a manner that they do not
// involve any candidate transition"; callers express that constraint here.
type Avoid func(Transition) bool

// Reachable returns the set of states reachable from the given state using
// only non-avoided transitions, including the state itself.
func (m *FSM) Reachable(from State, avoid Avoid) map[State]bool {
	seen := map[State]bool{from: true}
	frontier := []State{from}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, in := range m.inputs {
			t, ok := m.Lookup(s, in)
			if !ok || (avoid != nil && avoid(t)) {
				continue
			}
			if !seen[t.To] {
				seen[t.To] = true
				frontier = append(frontier, t.To)
			}
		}
	}
	return seen
}

// StronglyConnected reports whether every state can reach every other state.
func (m *FSM) StronglyConnected() bool {
	for _, s := range m.states {
		if len(m.Reachable(s, nil)) != len(m.states) {
			return false
		}
	}
	return true
}

// TransferSequence returns a shortest input sequence leading the machine from
// one state to another while exercising only non-avoided transitions. The
// empty sequence is returned when from == to. ok is false when no such
// sequence exists.
func (m *FSM) TransferSequence(from, to State, avoid Avoid) (seq []Symbol, ok bool) {
	if from == to {
		return nil, true
	}
	type node struct {
		state State
		path  []Symbol
	}
	seen := map[State]bool{from: true}
	frontier := []node{{state: from}}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range m.inputs {
			t, defined := m.Lookup(n.state, in)
			if !defined || (avoid != nil && avoid(t)) {
				continue
			}
			if seen[t.To] {
				continue
			}
			path := append(append([]Symbol(nil), n.path...), in)
			if t.To == to {
				return path, true
			}
			seen[t.To] = true
			frontier = append(frontier, node{state: t.To, path: path})
		}
	}
	return nil, false
}

// pairKey orders a state pair canonically so the pair BFS visits each
// unordered pair once.
type pairKey struct{ a, b State }

func makePair(a, b State) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a: a, b: b}
}

// DistinguishingSequence returns a shortest input sequence whose output
// sequence differs when applied in state a versus state b, using only
// non-avoided transitions in both runs. Undefined inputs yield Epsilon, so a
// defined-versus-undefined input already distinguishes. ok is false when the
// two states are equivalent under the avoidance constraint.
func (m *FSM) DistinguishingSequence(a, b State, avoid Avoid) (seq []Symbol, ok bool) {
	if a == b {
		return nil, false
	}
	type node struct {
		a, b State
		path []Symbol
	}
	seen := map[pairKey]bool{makePair(a, b): true}
	frontier := []node{{a: a, b: b}}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range m.inputs {
			ta, okA := m.Lookup(n.a, in)
			tb, okB := m.Lookup(n.b, in)
			if avoid != nil {
				// An avoided transition may not be exercised in either run.
				if (okA && avoid(ta)) || (okB && avoid(tb)) {
					continue
				}
			}
			outA, nextA := Epsilon, n.a
			if okA {
				outA, nextA = ta.Output, ta.To
			}
			outB, nextB := Epsilon, n.b
			if okB {
				outB, nextB = tb.Output, tb.To
			}
			path := append(append([]Symbol(nil), n.path...), in)
			if outA != outB {
				return path, true
			}
			if nextA == nextB {
				continue // merged: nothing downstream can distinguish
			}
			k := makePair(nextA, nextB)
			if seen[k] {
				continue
			}
			seen[k] = true
			frontier = append(frontier, node{a: nextA, b: nextB, path: path})
		}
	}
	return nil, false
}

// Equivalent reports whether two states produce identical output sequences
// for every input sequence.
func (m *FSM) Equivalent(a, b State) bool {
	if a == b {
		return true
	}
	_, distinguishable := m.DistinguishingSequence(a, b, nil)
	return !distinguishable
}

// CharacterizationSet returns a "limited characterization set" W for the
// given states: a set of input sequences such that every pair of the given
// states is distinguished by at least one sequence in the set (Step 6(a) of
// the paper). Pairs that cannot be distinguished under the avoidance
// constraint are reported in the second return value; when it is empty the
// set fully separates the states.
func (m *FSM) CharacterizationSet(states []State, avoid Avoid) (w [][]Symbol, indistinct [][2]State) {
	type seqKey string
	have := make(map[seqKey]bool)
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			a, b := states[i], states[j]
			if a == b {
				continue
			}
			// A sequence already collected may separate this pair.
			if separatedBy(m, a, b, w) {
				continue
			}
			seq, ok := m.DistinguishingSequence(a, b, avoid)
			if !ok {
				indistinct = append(indistinct, [2]State{a, b})
				continue
			}
			k := seqKey(joinSymbols(seq))
			if !have[k] {
				have[k] = true
				w = append(w, seq)
			}
		}
	}
	sort.Slice(w, func(i, j int) bool { return joinSymbols(w[i]) < joinSymbols(w[j]) })
	return w, indistinct
}

func separatedBy(m *FSM, a, b State, w [][]Symbol) bool {
	for _, seq := range w {
		outA, _ := m.Run(a, seq)
		outB, _ := m.Run(b, seq)
		if !symbolsEqual(outA, outB) {
			return true
		}
	}
	return false
}

func symbolsEqual(a, b []Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func joinSymbols(seq []Symbol) string {
	out := ""
	for i, s := range seq {
		if i > 0 {
			out += "."
		}
		out += string(s)
	}
	return out
}
