// Package fsm implements the deterministic, partially specified finite state
// machine substrate used throughout the CFSM diagnosis library.
//
// A machine follows Definition 1 of Ghedamsi, v. Bochmann and Dssouli
// (ICDCS 1993): a quintuple (S, I, O, NextStaFunc, OutFunc) where both the
// next-state function and the output function are partial functions of
// (state, input). An input that is undefined in the current state produces
// the distinguished Epsilon output and leaves the state unchanged, matching
// the observable behaviour of the paper's worked example (input v applied in
// state s0 of M3 yields "ε").
//
// The package also provides the classical FSM test-generation machinery the
// diagnosis algorithm builds on: reachability, transfer sequences, pairwise
// distinguishing sequences and (limited) characterization sets, all with
// support for "avoid sets" of transitions that must not be exercised — the
// mechanism Step 6 of the paper uses to keep diagnostic candidates out of the
// additional test cases.
package fsm

import (
	"fmt"
	"sort"
)

// State identifies a state of a machine, e.g. "s0".
type State string

// Symbol is an input or output symbol, e.g. "a" or "c'".
type Symbol string

// Distinguished output symbols of the model.
const (
	// Null is the output of the reset transition, written "-" in the paper.
	Null Symbol = "-"
	// Epsilon is the observation produced when an input is applied in a
	// state where it is undefined (the machine stays put).
	Epsilon Symbol = "ε"
)

// Transition is one labeled transition of a machine.
type Transition struct {
	Name   string // display label, e.g. "t7"; unique within a machine
	From   State
	Input  Symbol
	Output Symbol
	To     State
}

// String renders the transition in the paper's "t7: s2 -b/d'-> s0" style.
func (t Transition) String() string {
	name := t.Name
	if name == "" {
		name = "?"
	}
	return fmt.Sprintf("%s: %s -%s/%s-> %s", name, t.From, t.Input, t.Output, t.To)
}

// Key identifies a transition by its deterministic (state, input) pair.
type Key struct {
	From  State
	Input Symbol
}

// FSM is a deterministic, partially specified finite state machine.
// The zero value is not usable; construct machines with New or Builder.
// An FSM is immutable after construction (Rewire returns a modified copy),
// so it is safe for concurrent use by any number of goroutines.
type FSM struct {
	name    string
	initial State
	states  []State // sorted, for deterministic iteration
	inputs  []Symbol
	outputs []Symbol
	trans   map[Key]Transition
	byName  map[string]Key
	// sorted caches the transitions ordered by (From, Input); Transitions is
	// called from hot loops (fault enumeration, minimization, DOT export) and
	// must not rebuild and re-sort on every call.
	sorted []Transition
}

// New builds a machine and validates it: the initial state must be declared,
// transition endpoints must be declared states, transition names must be
// unique, and no two transitions may share a (state, input) pair.
func New(name string, initial State, states []State, transitions []Transition) (*FSM, error) {
	if name == "" {
		return nil, fmt.Errorf("fsm: machine name must not be empty")
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("fsm %s: at least one state is required", name)
	}
	stateSet := make(map[State]bool, len(states))
	for _, s := range states {
		if s == "" {
			return nil, fmt.Errorf("fsm %s: empty state name", name)
		}
		if stateSet[s] {
			return nil, fmt.Errorf("fsm %s: duplicate state %q", name, s)
		}
		stateSet[s] = true
	}
	if !stateSet[initial] {
		return nil, fmt.Errorf("fsm %s: initial state %q is not a declared state", name, initial)
	}

	m := &FSM{
		name:    name,
		initial: initial,
		states:  append([]State(nil), states...),
		trans:   make(map[Key]Transition, len(transitions)),
		byName:  make(map[string]Key, len(transitions)),
	}
	sort.Slice(m.states, func(i, j int) bool { return m.states[i] < m.states[j] })

	inputSet := make(map[Symbol]bool)
	outputSet := make(map[Symbol]bool)
	for _, t := range transitions {
		if t.Name == "" {
			return nil, fmt.Errorf("fsm %s: transition %v has no name", name, t)
		}
		if _, dup := m.byName[t.Name]; dup {
			return nil, fmt.Errorf("fsm %s: duplicate transition name %q", name, t.Name)
		}
		if !stateSet[t.From] {
			return nil, fmt.Errorf("fsm %s: transition %s starts in undeclared state %q", name, t.Name, t.From)
		}
		if !stateSet[t.To] {
			return nil, fmt.Errorf("fsm %s: transition %s ends in undeclared state %q", name, t.Name, t.To)
		}
		if t.Input == "" || t.Output == "" {
			return nil, fmt.Errorf("fsm %s: transition %s has an empty symbol", name, t.Name)
		}
		if t.Input == Epsilon || t.Output == Epsilon {
			return nil, fmt.Errorf("fsm %s: transition %s uses the reserved symbol %q", name, t.Name, Epsilon)
		}
		k := Key{From: t.From, Input: t.Input}
		if prev, clash := m.trans[k]; clash {
			return nil, fmt.Errorf("fsm %s: nondeterminism: transitions %s and %s share state %q and input %q",
				name, prev.Name, t.Name, t.From, t.Input)
		}
		m.trans[k] = t
		m.byName[t.Name] = k
		inputSet[t.Input] = true
		outputSet[t.Output] = true
	}
	m.inputs = sortedSymbols(inputSet)
	m.outputs = sortedSymbols(outputSet)
	m.rebuildSorted()
	return m, nil
}

// rebuildSorted recomputes the cached (From, Input)-ordered transition
// slice.
func (m *FSM) rebuildSorted() {
	m.sorted = make([]Transition, 0, len(m.trans))
	for _, t := range m.trans {
		m.sorted = append(m.sorted, t)
	}
	sort.Slice(m.sorted, func(i, j int) bool {
		if m.sorted[i].From != m.sorted[j].From {
			return m.sorted[i].From < m.sorted[j].From
		}
		return m.sorted[i].Input < m.sorted[j].Input
	})
}

func sortedSymbols(set map[Symbol]bool) []Symbol {
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Name returns the machine's display name, e.g. "M1".
func (m *FSM) Name() string { return m.name }

// Initial returns the initial state.
func (m *FSM) Initial() State { return m.initial }

// States returns the declared states in sorted order. The slice is a copy.
func (m *FSM) States() []State { return append([]State(nil), m.states...) }

// Inputs returns the input alphabet actually used by transitions, sorted.
func (m *FSM) Inputs() []Symbol { return append([]Symbol(nil), m.inputs...) }

// Outputs returns the output alphabet actually used by transitions, sorted.
func (m *FSM) Outputs() []Symbol { return append([]Symbol(nil), m.outputs...) }

// HasState reports whether s is a declared state.
func (m *FSM) HasState(s State) bool {
	for _, st := range m.states {
		if st == s {
			return true
		}
	}
	return false
}

// Lookup returns the transition defined for (state, input), if any.
func (m *FSM) Lookup(from State, input Symbol) (Transition, bool) {
	t, ok := m.trans[Key{From: from, Input: input}]
	return t, ok
}

// ByName returns the transition with the given name, if any.
func (m *FSM) ByName(name string) (Transition, bool) {
	k, ok := m.byName[name]
	if !ok {
		return Transition{}, false
	}
	return m.trans[k], true
}

// Transitions returns all transitions sorted by (From, Input) for
// deterministic iteration. The slice is a copy of a cache precomputed at
// construction time, so repeated calls never re-sort.
func (m *FSM) Transitions() []Transition {
	return append([]Transition(nil), m.sorted...)
}

// NumTransitions returns the number of defined transitions.
func (m *FSM) NumTransitions() int { return len(m.trans) }

// Clone returns a deep copy of the machine.
func (m *FSM) Clone() *FSM {
	c := &FSM{
		name:    m.name,
		initial: m.initial,
		states:  append([]State(nil), m.states...),
		inputs:  append([]Symbol(nil), m.inputs...),
		outputs: append([]Symbol(nil), m.outputs...),
		trans:   make(map[Key]Transition, len(m.trans)),
		byName:  make(map[string]Key, len(m.byName)),
		sorted:  append([]Transition(nil), m.sorted...),
	}
	for k, t := range m.trans {
		c.trans[k] = t
	}
	for n, k := range m.byName {
		c.byName[n] = k
	}
	return c
}

// Rewire returns a copy of the machine in which the named transition has its
// output replaced by newOutput (if non-empty) and its destination replaced by
// newTo (if non-empty). It is the primitive the fault model and the
// hypothesis-checking procedures of the diagnosis algorithm are built on.
func (m *FSM) Rewire(name string, newOutput Symbol, newTo State) (*FSM, error) {
	k, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("fsm %s: no transition named %q", m.name, name)
	}
	if newTo != "" && !m.HasState(newTo) {
		return nil, fmt.Errorf("fsm %s: rewire %s: %q is not a declared state", m.name, name, newTo)
	}
	c := m.Clone()
	t := c.trans[k]
	if newOutput != "" {
		t.Output = newOutput
	}
	if newTo != "" {
		t.To = newTo
	}
	c.trans[k] = t
	// The rewire keeps the transition's (From, Input) key, so the cached
	// order is unchanged; update the matching entry in place.
	for i := range c.sorted {
		if c.sorted[i].Name == t.Name {
			c.sorted[i] = t
			break
		}
	}
	// Recompute the output alphabet, which may have changed.
	outputSet := make(map[Symbol]bool, len(c.trans))
	for _, tr := range c.trans {
		outputSet[tr.Output] = true
	}
	c.outputs = sortedSymbols(outputSet)
	return c, nil
}
