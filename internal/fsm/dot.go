package fsm

import (
	"fmt"
	"strings"
)

// DOT renders the machine as a Graphviz digraph in the style of the paper's
// Figure 1: one node per state, the initial state marked with an inbound
// arrow, and each transition labeled "name: input/output".
func (m *FSM) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> %q;\n", string(m.initial))
	for _, s := range m.states {
		fmt.Fprintf(&b, "  %q;\n", string(s))
	}
	for _, t := range m.Transitions() {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s: %s/%s\"];\n",
			string(t.From), string(t.To), t.Name, string(t.Input), string(t.Output))
	}
	b.WriteString("}\n")
	return b.String()
}
