package fsm

import (
	"math/rand"
	"testing"
)

func TestPresetDSCounterLike(t *testing.T) {
	// threeState has pairwise-distinguishable states; input c alone already
	// separates s2 (z) from s0/s1 (ε), and a/b separate the rest.
	m := threeState(t)
	seq, ok := m.PresetDS()
	if !ok {
		t.Fatal("no preset DS found for a machine with distinct states")
	}
	if !m.VerifyPresetDS(seq) {
		t.Fatalf("PresetDS returned an invalid sequence %v", seq)
	}
}

func TestPresetDSEquivalentStates(t *testing.T) {
	m := redundant(t) // s1 ≡ s2
	if _, ok := m.PresetDS(); ok {
		t.Fatal("machine with equivalent states must have no preset DS")
	}
}

func TestPresetDSSingleState(t *testing.T) {
	m, err := New("S", "s0", []State{"s0"}, []Transition{
		{Name: "t", From: "s0", Input: "a", Output: "x", To: "s0"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	seq, ok := m.PresetDS()
	if !ok || len(seq) != 0 {
		t.Fatalf("single-state DS = %v/%v", seq, ok)
	}
	if !m.VerifyPresetDS(nil) {
		t.Fatal("empty sequence must verify for a single state")
	}
}

func TestVerifyPresetDSRejectsBadSequence(t *testing.T) {
	m := threeState(t)
	// Input a alone: s0→x, s1→x — identical outputs, not a DS.
	if m.VerifyPresetDS([]Symbol{"a"}) {
		t.Fatal("a is not a distinguishing sequence")
	}
}

// TestPresetDSProperty: whenever PresetDS succeeds on a random machine, the
// sequence verifies.
func TestPresetDSProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomMachine(rng)
		seq, ok := m.PresetDS()
		if !ok {
			continue
		}
		if !m.VerifyPresetDS(seq) {
			t.Errorf("seed %d: invalid DS %v for machine %s", seed, seq, m.Name())
		}
	}
}
