package fsm

// Step applies one input in the given state. If the input is undefined in
// that state the machine stays put and the observation is Epsilon; the
// returned Transition is the zero value and ok is false.
func (m *FSM) Step(from State, input Symbol) (out Symbol, to State, tr Transition, ok bool) {
	t, defined := m.Lookup(from, input)
	if !defined {
		return Epsilon, from, Transition{}, false
	}
	return t.Output, t.To, t, true
}

// Run applies a sequence of inputs starting from the given state and returns
// the produced output sequence and the final state. Undefined inputs produce
// Epsilon and leave the state unchanged.
func (m *FSM) Run(from State, inputs []Symbol) (outs []Symbol, end State) {
	outs = make([]Symbol, 0, len(inputs))
	end = from
	for _, in := range inputs {
		out, next, _, _ := m.Step(end, in)
		outs = append(outs, out)
		end = next
	}
	return outs, end
}

// Trace applies a sequence of inputs from the given state and returns the
// transitions taken. Undefined inputs contribute no transition.
func (m *FSM) Trace(from State, inputs []Symbol) (trace []Transition, end State) {
	end = from
	for _, in := range inputs {
		_, next, tr, ok := m.Step(end, in)
		if ok {
			trace = append(trace, tr)
		}
		end = next
	}
	return trace, end
}
