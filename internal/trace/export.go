package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// WriteJSONL writes one event per line as JSON.  Output is byte-deterministic
// for a given event slice (encoding/json sorts map keys).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrTruncatedTrace marks a JSONL trace that ends mid-event or carries no
// events at all — the signature of an interrupted recording (crashed writer,
// partial copy).  Callers distinguish it from in-band corruption with
// errors.Is.
var ErrTruncatedTrace = errors.New("truncated trace")

// ReadJSONL parses a JSONL trace.  Blank lines are skipped.  A final line
// that is not a complete JSON event reports ErrTruncatedTrace (writers emit
// line-atomically, so a broken last line means the recording was cut short);
// a malformed line elsewhere is corruption and reports a plain parse error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	type rawLine struct {
		no   int
		text string
	}
	var lines []rawLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	no := 0
	for sc.Scan() {
		no++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		lines = append(lines, rawLine{no: no, text: text})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	events := make([]Event, 0, len(lines))
	for i, l := range lines {
		var e Event
		if err := json.Unmarshal([]byte(l.text), &e); err != nil {
			if i == len(lines)-1 {
				return nil, fmt.Errorf("trace: line %d ends mid-event: %w", l.no, ErrTruncatedTrace)
			}
			return nil, fmt.Errorf("trace: line %d: %w", l.no, err)
		}
		events = append(events, e)
	}
	return events, nil
}

// ValidateJSONL is the exporter's own schema check: every line must parse as
// an Event with a known kind, sequence numbers must be strictly increasing,
// phases must be ""/"B"/"E", span ids must appear exactly on span edges, and
// every B must be closed by a matching E of the same kind.  It returns the
// number of validated events.  Ring-truncated traces (which may have lost a
// B edge) do not validate; validation targets complete exported traces.
func ValidateJSONL(r io.Reader) (int, error) {
	events, err := ReadJSONL(r)
	if err != nil {
		return 0, err
	}
	var lastSeq uint64
	open := make(map[uint64]Kind)
	for i, e := range events {
		where := fmt.Sprintf("trace: event %d (seq %d)", i+1, e.Seq)
		if !KnownKind(e.Kind) {
			return 0, fmt.Errorf("%s: unknown kind %q", where, e.Kind)
		}
		if e.Seq <= lastSeq {
			return 0, fmt.Errorf("%s: sequence not strictly increasing (previous %d)", where, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Phase {
		case "":
			if e.Span != 0 {
				return 0, fmt.Errorf("%s: instant event carries span id %d", where, e.Span)
			}
		case PhaseBegin:
			if e.Span == 0 {
				return 0, fmt.Errorf("%s: span begin without span id", where)
			}
			if prev, ok := open[e.Span]; ok {
				return 0, fmt.Errorf("%s: span %d already open as %q", where, e.Span, prev)
			}
			open[e.Span] = e.Kind
		case PhaseEnd:
			kind, ok := open[e.Span]
			if !ok {
				return 0, fmt.Errorf("%s: span end %d without matching begin", where, e.Span)
			}
			if kind != e.Kind {
				return 0, fmt.Errorf("%s: span %d ends as %q but began as %q", where, e.Span, e.Kind, kind)
			}
			delete(open, e.Span)
		default:
			return 0, fmt.Errorf("%s: invalid phase %q", where, e.Phase)
		}
	}
	if len(open) > 0 {
		for id, kind := range open {
			return 0, fmt.Errorf("trace: span %d (%q) never closed", id, kind)
		}
	}
	return len(events), nil
}

// chromeEvent is one entry of the Chrome trace-event format ("traceEvents"
// JSON array), loadable in Perfetto or chrome://tracing.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps a kind's stage prefix to a synthetic thread id so Perfetto
// renders the simulator, analysis, and localization as separate tracks.
func chromeTID(k Kind) int {
	s := string(k)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s = s[:i]
	}
	switch s {
	case "run":
		return 0
	case "sim":
		return 1
	case "analyze":
		return 2
	case "localize":
		return 3
	case "sweep":
		return 4
	case "oracle":
		return 5
	case "chaos":
		return 6
	default:
		return 9
	}
}

// WriteChromeTrace exports events in Chrome trace-event format.  Timestamps
// use the event sequence number (in microseconds) rather than wall-clock
// time so exports stay deterministic; the simulation step clock is kept as
// an argument on every event.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeFile{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: string(e.Kind),
			Cat:  string(e.Kind),
			TS:   e.Seq,
			PID:  1,
			TID:  chromeTID(e.Kind),
			Args: map[string]string{"clock": fmt.Sprintf("%d", e.Clock)},
		}
		if i := strings.IndexByte(ce.Cat, '.'); i >= 0 {
			ce.Cat = ce.Cat[:i]
		}
		for k, v := range e.Attrs {
			ce.Args[k] = v
		}
		switch e.Phase {
		case PhaseBegin:
			ce.Phase = "B"
		case PhaseEnd:
			ce.Phase = "E"
		default:
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
