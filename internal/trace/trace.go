// Package trace provides a dependency-free structured tracer for the
// diagnosis pipeline.
//
// The model is deliberately small: a Tracer collects a flat sequence of
// Events.  An Event is either an instant (Phase "") or one side of a span
// (Phase "B"/"E" with a shared span id).  Every event carries the value of a
// monotonic step clock that the simulator advances once per executed input
// (Tick), so events can be correlated with simulation steps even after
// export.  Attributes are plain string key/value pairs, which keeps the
// package free of imports from the rest of the module — cfsm and core both
// import trace, never the other way around.
//
// A nil *Tracer is a valid no-op: every method checks the receiver so
// instrumented hot paths pay a single pointer test when tracing is off,
// matching the internal/obs pattern.  A Tracer is safe for concurrent use;
// the parallel mutant sweep shares one tracer across workers.
package trace

import "sync"

// Kind identifies what an event describes.  Kinds are namespaced by pipeline
// stage ("sim.", "analyze.", "localize.", ...) so exporters can group them.
type Kind string

// Event kinds emitted by the pipeline.  The mapping to the paper's Steps 1–6
// is documented in EXPERIMENTS.md ("Tracing").
const (
	// Replay header events (recorded once per run by internal/replay).
	KindRunSpec     Kind = "run.spec"     // specification snapshot (JSON)
	KindRunCase     Kind = "run.case"     // one test-suite case (inputs)
	KindRunObserved Kind = "run.observed" // IUT outputs for one case

	// Simulator events (paper Section 2 semantics).
	KindSimCase    Kind = "sim.case"    // span: one test case simulated
	KindSimStep    Kind = "sim.step"    // external input consumed (Steps 1–2)
	KindSimFire    Kind = "sim.fire"    // a transition fired
	KindSimSend    Kind = "sim.send"    // internal message enqueued
	KindSimRecv    Kind = "sim.recv"    // internal message dequeued
	KindSimObserve Kind = "sim.observe" // external output observed

	// Analysis events (paper Steps 3–5).
	KindAnalyze        Kind = "analyze"                 // span: whole analysis
	KindSymptom        Kind = "analyze.symptom"         // Step 3: symptom found
	KindUST            Kind = "analyze.ust"             // unique symptom transition
	KindConflictSet    Kind = "analyze.conflict_set"    // Step 4: C(ot) built
	KindCandidateSplit Kind = "analyze.candidate_split" // Step 5: ITC/ustset/FTCtr/FTCco
	KindHypothesis     Kind = "analyze.hypothesis"      // surviving fault hypothesis
	KindDiagnosis      Kind = "analyze.diagnosis"       // emitted diagnosis

	// Adaptive localization events (paper Step 6).
	KindRound        Kind = "localize.round"        // span: one elimination round
	KindCandidate    Kind = "localize.candidate"    // span: one candidate transition
	KindTest         Kind = "localize.test"         // diagnostic test + oracle answer
	KindEliminate    Kind = "localize.eliminate"    // variant refuted, with reason
	KindResolved     Kind = "localize.resolved"     // candidate cleared/convicted
	KindEscalation   Kind = "localize.escalation"   // budget/strategy escalation
	KindInconclusive Kind = "localize.inconclusive" // candidate left without trusted evidence
	KindVerdict      Kind = "localize.verdict"      // final verdict

	// Resilient-oracle events (internal/resilient): the retry/backoff layer
	// between Step 6 and a flaky implementation under test.
	KindOracleRetry      Kind = "oracle.retry"      // attempt failed, backing off
	KindOracleTimeout    Kind = "oracle.timeout"    // attempt exceeded the per-query timeout
	KindOracleVote       Kind = "oracle.vote"       // repeated executions compared
	KindOracleUnreliable Kind = "oracle.unreliable" // retries/votes exhausted without trust

	// Chaos-injection events (internal/resilient fault injector).
	KindChaosInject Kind = "chaos.inject" // one injected observation fault

	// Distributed-observation events (internal/ports): per-port projection of
	// the observed outputs and the interleaving-consistency match against the
	// specification's expectation.
	KindPortsProject Kind = "ports.project" // one case projected onto its port map
	KindPortsMatch   Kind = "ports.match"   // maximal consistent prefix vs the expectation
	KindPortsClosure Kind = "ports.closure" // bounded interleaving-closure sweep of one case

	// Experiment events.
	KindSweepMutant Kind = "sweep.mutant" // span: traced diagnosis of one mutant

	// Batch-job events (internal/jobs): the durable queue in front of the
	// pipeline.
	KindJobSubmit   Kind = "job.submit"    // job accepted into the queue
	KindJobRun      Kind = "job.run"       // span: one job executing on a worker
	KindJobCacheHit Kind = "job.cache_hit" // duplicate submission answered from the result cache
	KindJobReplay   Kind = "job.replay"    // job re-queued from the WAL after a restart
	KindJobDrain    Kind = "job.drain"     // graceful-shutdown drain of the worker pool
)

// Kinds returns every kind this package emits, in a stable order.  The JSONL
// validator treats any other kind as a schema violation.
func Kinds() []Kind {
	return []Kind{
		KindRunSpec, KindRunCase, KindRunObserved,
		KindSimCase, KindSimStep, KindSimFire, KindSimSend, KindSimRecv, KindSimObserve,
		KindAnalyze, KindSymptom, KindUST, KindConflictSet, KindCandidateSplit,
		KindHypothesis, KindDiagnosis,
		KindRound, KindCandidate, KindTest, KindEliminate, KindResolved,
		KindEscalation, KindInconclusive, KindVerdict,
		KindOracleRetry, KindOracleTimeout, KindOracleVote, KindOracleUnreliable,
		KindChaosInject,
		KindPortsProject, KindPortsMatch, KindPortsClosure,
		KindSweepMutant,
		KindJobSubmit, KindJobRun, KindJobCacheHit, KindJobReplay, KindJobDrain,
	}
}

var knownKinds = func() map[Kind]bool {
	m := make(map[Kind]bool)
	for _, k := range Kinds() {
		m[k] = true
	}
	return m
}()

// KnownKind reports whether k is a kind emitted by this package.
func KnownKind(k Kind) bool { return knownKinds[k] }

// Span phases.  Instant events use the empty phase.
const (
	PhaseBegin = "B"
	PhaseEnd   = "E"
)

// Event is one entry in a trace.  Attrs uses a map so encoding/json emits
// keys in sorted order, keeping exported traces byte-deterministic.
type Event struct {
	Seq   uint64            `json:"seq"`             // 1-based emission order
	Clock uint64            `json:"clock"`           // simulation step clock
	Kind  Kind              `json:"kind"`            // what happened
	Phase string            `json:"phase,omitempty"` // "", "B", or "E"
	Span  uint64            `json:"span,omitempty"`  // span id for B/E pairs
	Attrs map[string]string `json:"attrs,omitempty"` // details
}

// KV is one event attribute.
type KV struct{ K, V string }

// A builds an attribute; shorthand for KV{k, v}.
func A(k, v string) KV { return KV{K: k, V: v} }

// Tracer collects events.  The zero value (via New) grows without bound;
// NewRing caps memory for always-on use by dropping the oldest events.
type Tracer struct {
	mu       sync.Mutex
	events   []Event
	limit    int // 0 = unbounded
	head     int // ring read position when full
	full     bool
	seq      uint64
	clock    uint64
	nextSpan uint64
	dropped  uint64
}

// New returns an unbounded tracer.
func New() *Tracer { return &Tracer{} }

// NewRing returns a tracer that retains at most capacity events, discarding
// the oldest once full.  Dropped reports how many were discarded.
func NewRing(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{limit: capacity, events: make([]Event, 0, capacity)}
}

// Enabled reports whether events will be recorded.  It is safe on nil.
func (t *Tracer) Enabled() bool { return t != nil }

// Tick advances the monotonic step clock.  The simulator calls it once per
// executed input so all events between two ticks share a step number.
func (t *Tracer) Tick() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock++
	t.mu.Unlock()
}

// Clock returns the current step-clock value.
func (t *Tracer) Clock() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clock
}

func attrMap(attrs []KV) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.K] = a.V
	}
	return m
}

// record appends under the lock, honoring the ring bound.
func (t *Tracer) record(kind Kind, phase string, span uint64, attrs []KV) {
	t.mu.Lock()
	t.seq++
	ev := Event{Seq: t.seq, Clock: t.clock, Kind: kind, Phase: phase, Span: span, Attrs: attrMap(attrs)}
	if t.limit == 0 {
		t.events = append(t.events, ev)
	} else if len(t.events) < t.limit && !t.full {
		t.events = append(t.events, ev)
		if len(t.events) == t.limit {
			t.full = true
		}
	} else {
		t.events[t.head] = ev
		t.head = (t.head + 1) % t.limit
		t.dropped++
	}
	t.mu.Unlock()
}

// Emit records an instant event.  Safe on nil.
func (t *Tracer) Emit(kind Kind, attrs ...KV) {
	if t == nil {
		return
	}
	t.record(kind, "", 0, attrs)
}

// Span is an open interval returned by Begin.  The zero Span (from a nil
// tracer) is a no-op.
type Span struct {
	t    *Tracer
	id   uint64
	kind Kind
}

// Begin opens a span and records its "B" event.  Safe on nil.
func (t *Tracer) Begin(kind Kind, attrs ...KV) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	t.mu.Unlock()
	t.record(kind, PhaseBegin, id, attrs)
	return Span{t: t, id: id, kind: kind}
}

// End closes the span, recording its "E" event.  Safe on the zero Span and
// idempotent in the sense that calling End on the zero value does nothing.
func (s Span) End(attrs ...KV) {
	if s.t == nil {
		return
	}
	s.t.record(s.kind, PhaseEnd, s.id, attrs)
}

// ID returns the span id (0 for the zero Span).
func (s Span) ID() uint64 { return s.id }

// Events returns a chronological snapshot of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if t.full {
		out = append(out, t.events[t.head:]...)
		out = append(out, t.events[:t.head]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events a ring tracer has discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded events and restarts the clocks.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.head = 0
	t.full = false
	t.seq = 0
	t.clock = 0
	t.nextSpan = 0
	t.dropped = 0
	t.mu.Unlock()
}

// CountKind returns how many events in evs have the given kind and phase
// ("" matches instants, "B"/"E" span edges).  Replay uses it to compare
// round counts between a recorded and a replayed localization.
func CountKind(evs []Event, kind Kind, phase string) int {
	n := 0
	for _, e := range evs {
		if e.Kind == kind && e.Phase == phase {
			n++
		}
	}
	return n
}
