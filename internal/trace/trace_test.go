package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Tick()
	tr.Emit(KindSimStep, A("input", "a^1"))
	sp := tr.Begin(KindAnalyze)
	sp.End()
	tr.Reset()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer returned events: %v", got)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Clock() != 0 {
		t.Fatal("nil tracer reports nonzero state")
	}
}

func TestEmitAndSpans(t *testing.T) {
	tr := New()
	tr.Tick()
	sp := tr.Begin(KindAnalyze, A("cases", "2"))
	tr.Emit(KindSymptom, A("case", "tc1"), A("step", "6"))
	tr.Tick()
	sp.End(A("diagnoses", "3"))

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindAnalyze || evs[0].Phase != PhaseBegin || evs[0].Span == 0 {
		t.Fatalf("bad begin event: %+v", evs[0])
	}
	if evs[1].Kind != KindSymptom || evs[1].Phase != "" || evs[1].Span != 0 {
		t.Fatalf("bad instant event: %+v", evs[1])
	}
	if evs[2].Phase != PhaseEnd || evs[2].Span != evs[0].Span {
		t.Fatalf("end does not match begin: %+v", evs[2])
	}
	if evs[0].Clock != 1 || evs[2].Clock != 2 {
		t.Fatalf("clock not threaded: begin %d end %d", evs[0].Clock, evs[2].Clock)
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[1].Attrs["case"] != "tc1" || evs[1].Attrs["step"] != "6" {
		t.Fatalf("attrs lost: %v", evs[1].Attrs)
	}
}

func TestRingDropsOldest(t *testing.T) {
	tr := NewRing(3)
	for i := 0; i < 5; i++ {
		tr.Emit(KindSimStep, A("i", string(rune('a'+i))))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("ring kept wrong window: seqs %d..%d", evs[0].Seq, evs[2].Seq)
	}
}

func TestResetClearsState(t *testing.T) {
	tr := New()
	tr.Tick()
	tr.Emit(KindSimStep)
	tr.Reset()
	if tr.Len() != 0 || tr.Clock() != 0 {
		t.Fatal("reset did not clear state")
	}
	tr.Emit(KindSimStep)
	if evs := tr.Events(); evs[0].Seq != 1 {
		t.Fatalf("seq did not restart: %d", evs[0].Seq)
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Tick()
				sp := tr.Begin(KindSweepMutant)
				tr.Emit(KindSimStep)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*100*3 {
		t.Fatalf("lost events: %d", tr.Len())
	}
	seen := make(map[uint64]bool)
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestJSONLRoundTripAndValidate(t *testing.T) {
	tr := New()
	tr.Tick()
	sp := tr.Begin(KindRound, A("round", "1"))
	tr.Emit(KindTest, A("inputs", "R, c^1, b^1"), A("observed", "-, a^2, d'^1"))
	sp.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Count(text, "\n") != 3 {
		t.Fatalf("want 3 lines, got:\n%s", text)
	}

	back, err := ReadJSONL(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[1].Attrs["inputs"] != "R, c^1, b^1" {
		t.Fatalf("round trip lost data: %+v", back)
	}

	n, err := ValidateJSONL(strings.NewReader(text))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if n != 3 {
		t.Fatalf("validated %d events, want 3", n)
	}

	// Determinism: re-encoding yields identical bytes.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Fatal("JSONL export is not byte-deterministic")
	}
}

func TestValidateJSONLRejections(t *testing.T) {
	cases := []struct {
		name  string
		lines string
		want  string
	}{
		{"unknown kind", `{"seq":1,"clock":0,"kind":"bogus"}`, "unknown kind"},
		{"seq regression", `{"seq":2,"clock":0,"kind":"sim.step"}` + "\n" + `{"seq":1,"clock":0,"kind":"sim.step"}`, "strictly increasing"},
		{"bad phase", `{"seq":1,"clock":0,"kind":"sim.step","phase":"X"}`, "invalid phase"},
		{"instant with span", `{"seq":1,"clock":0,"kind":"sim.step","span":7}`, "carries span id"},
		{"unclosed span", `{"seq":1,"clock":0,"kind":"localize.round","phase":"B","span":1}`, "never closed"},
		{"end without begin", `{"seq":1,"clock":0,"kind":"localize.round","phase":"E","span":1}`, "without matching begin"},
		{"kind mismatch", `{"seq":1,"clock":0,"kind":"localize.round","phase":"B","span":1}` + "\n" + `{"seq":2,"clock":0,"kind":"analyze","phase":"E","span":1}`, "began as"},
		{"not json mid-trace", `nope` + "\n" + `{"seq":1,"clock":0,"kind":"sim.step"}`, "invalid character"},
		{"not json final line", `{"seq":1,"clock":0,"kind":"sim.step"}` + "\n" + `{"seq":2,"clo`, "truncated trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(tc.lines))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New()
	tr.Tick()
	sp := tr.Begin(KindRound, A("round", "1"))
	tr.Emit(KindEliminate, A("reason", "predicted c'^1, observed d'^1"))
	sp.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d chrome events, want 3", len(out.TraceEvents))
	}
	first := out.TraceEvents[0]
	if first["ph"] != "B" || first["cat"] != "localize" || first["name"] != "localize.round" {
		t.Fatalf("bad span begin: %v", first)
	}
	mid := out.TraceEvents[1]
	if mid["ph"] != "i" || mid["s"] != "t" {
		t.Fatalf("bad instant: %v", mid)
	}
	args := mid["args"].(map[string]any)
	if args["reason"] != "predicted c'^1, observed d'^1" || args["clock"] != "1" {
		t.Fatalf("bad args: %v", args)
	}
}

func TestCountKind(t *testing.T) {
	tr := New()
	sp := tr.Begin(KindRound)
	sp.End()
	sp2 := tr.Begin(KindRound)
	sp2.End()
	tr.Emit(KindTest)
	if got := CountKind(tr.Events(), KindRound, PhaseBegin); got != 2 {
		t.Fatalf("CountKind rounds = %d, want 2", got)
	}
	if got := CountKind(tr.Events(), KindTest, ""); got != 1 {
		t.Fatalf("CountKind tests = %d, want 1", got)
	}
}
