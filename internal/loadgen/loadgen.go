// Package loadgen is the traffic-shaped load harness of the diagnosis
// service: a seeded open-loop workload generator that drives a running
// server with a configurable mix of interactive diagnoses, batch sweep
// jobs and cache-hit duplicate submissions across simulated tenants, and
// reports per-class latency quantiles, throughput and a full error
// taxonomy.
//
// # Open loop
//
// Arrivals are scheduled by a Poisson process (exponential inter-arrival
// times drawn from a seeded rng) and fired without waiting for earlier
// requests to finish — the offered rate does not slow down when the server
// does. That is the property that makes the measured saturation knee real:
// a closed loop self-throttles and hides the very overload the harness
// exists to find. The only concession to practicality is a bounded
// in-flight cap; arrivals beyond it are counted as shed, never silently
// dropped, so a saturated run is visible in the report rather than eaten
// by file-descriptor exhaustion.
//
// The rng drives only the arrival schedule, class mix and tenant draw, so
// a seed pins the offered workload exactly; latencies are whatever the
// server under test produces.
//
// # Classes
//
//   - interactive: synchronous POST /v1/diagnose, the latency-sensitive
//     path (measured end to end).
//   - batch: POST /v1/jobs sweep submissions with unique payloads — each
//     accepted job costs a queue slot and a worker.
//   - cachehit: POST /v1/jobs duplicate submissions of one fixed payload —
//     after the first completes, the content-addressed cache answers.
//
// Reports quote bucket-interpolated p50/p95/p99 from obs.Histogram on the
// high-resolution ladder (see obs.HighResLatencyBuckets), achieved
// throughput, and error counts keyed by the server's error-envelope code
// (queue_full and tenant_rate_limited stay distinguishable end to end).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"cfsmdiag/internal/obs"
)

// Class is one workload class.
type Class string

// The workload classes.
const (
	ClassInteractive Class = "interactive"
	ClassBatch       Class = "batch"
	ClassCacheHit    Class = "cachehit"
)

// classOrder fixes display order in reports.
var classOrder = []Class{ClassInteractive, ClassBatch, ClassCacheHit}

// Request is one prepared HTTP call.
type Request struct {
	Method string
	Path   string
	Body   []byte
}

// Factory builds the wire request for one arrival. seq increments per
// arrival (all classes share the counter), so factories can make batch
// payloads unique and cache-hit payloads identical.
type Factory func(class Class, tenant string, seq int) Request

// Mix weights the classes; weights are normalized, zero removes the class.
type Mix struct {
	Interactive float64
	Batch       float64
	CacheHit    float64
}

// DefaultMix approximates a serving workload: mostly interactive, a
// steady batch drip, and a tail of duplicate lookups.
var DefaultMix = Mix{Interactive: 0.6, Batch: 0.2, CacheHit: 0.2}

// Config tunes one load run.
type Config struct {
	// BaseURL of the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Seed pins the arrival schedule, class mix and tenant draw.
	Seed int64
	// Rate is the offered arrival rate in requests per second.
	Rate float64
	// Duration bounds the arrival window; in-flight requests are awaited
	// after it closes.
	Duration time.Duration
	// Mix weights the classes (zero value selects DefaultMix).
	Mix Mix
	// Tenants spreads submissions across this many simulated tenants
	// (t0..tN-1); <= 0 selects 1.
	Tenants int
	// MaxInFlight caps concurrently outstanding requests; arrivals beyond
	// it are counted as shed. <= 0 selects 256.
	MaxInFlight int
	// Client issues the requests; nil selects a client with a 30s timeout.
	Client *http.Client
	// Factory builds request bodies; required.
	Factory Factory
	// Registry receives the cfsmdiag_load_* measurement families; nil
	// selects a fresh private registry (the report is complete either way).
	Registry *obs.Registry
}

// Load-harness metric families.
const (
	metricLoadRequests = "cfsmdiag_load_requests_total"
	metricLoadLatency  = "cfsmdiag_load_latency_seconds"
	metricLoadInFlight = "cfsmdiag_load_in_flight"
	metricLoadShed     = "cfsmdiag_load_shed_total"
)

// ClassReport is one class's measurements.
type ClassReport struct {
	Class Class `json:"class"`
	// Offered counts scheduled arrivals; Shed the ones dropped at the
	// in-flight cap; Completed the ones that got any HTTP response.
	Offered   int64 `json:"offered"`
	Shed      int64 `json:"shed,omitempty"`
	Completed int64 `json:"completed"`
	OK        int64 `json:"ok"`
	// Errors is the failure taxonomy: error-envelope codes where the
	// server sent one (queue_full, tenant_rate_limited, ...), http_<status>
	// otherwise, and transport/timeout for requests that never completed.
	Errors map[string]int64 `json:"errors,omitempty"`
	// Latency quantiles over successful requests, milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// Throughput is successful requests per wall second.
	Throughput float64 `json:"throughput_per_sec"`
	// LatencyBuckets is the full latency histogram (per-bucket counts, not
	// cumulative), so the regression gate can compare whole distributions
	// instead of three quantiles. The overflow bucket is encoded with
	// LeMS < 0 (JSON cannot carry +Inf).
	LatencyBuckets []LatencyBucket `json:"latency_buckets,omitempty"`
}

// LatencyBucket is one histogram bucket of a ClassReport: requests whose
// latency fell at or under LeMS milliseconds (and over the previous bucket's
// bound). LeMS < 0 marks the overflow bucket.
type LatencyBucket struct {
	LeMS  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// Report is one load run's result.
type Report struct {
	Rate        float64 `json:"rate"`
	DurationSec float64 `json:"duration_sec"`
	Seed        int64   `json:"seed"`
	Offered     int64   `json:"offered"`
	Shed        int64   `json:"shed,omitempty"`
	OK          int64   `json:"ok"`
	// Goodput is total successful requests per wall second; AchievedRatio
	// is OK/Offered — the fraction of offered load the server absorbed.
	Goodput       float64          `json:"goodput_per_sec"`
	AchievedRatio float64          `json:"achieved_ratio"`
	Errors        map[string]int64 `json:"errors,omitempty"`
	Classes       []ClassReport    `json:"classes"`
}

// Class returns the named class's report, nil when absent.
func (r *Report) Class(c Class) *ClassReport {
	for i := range r.Classes {
		if r.Classes[i].Class == c {
			return &r.Classes[i]
		}
	}
	return nil
}

// classRecorder accumulates one class's measurements (atomics via obs).
type classRecorder struct {
	offered   *obs.Counter
	shed      *obs.Counter
	ok        *obs.Counter
	lat       *obs.Histogram
	mu        sync.Mutex
	errCounts map[string]int64
	completed int64
}

func (cr *classRecorder) fail(key string) {
	cr.mu.Lock()
	cr.errCounts[key]++
	cr.completed++
	cr.mu.Unlock()
}

func (cr *classRecorder) success(elapsed time.Duration) {
	cr.ok.Inc()
	cr.lat.Observe(elapsed.Seconds())
	cr.mu.Lock()
	cr.completed++
	cr.mu.Unlock()
}

// errorEnvelope mirrors the server's single error shape.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// classify maps one response (or transport failure) onto the taxonomy.
func classify(resp *http.Response, body []byte, err error) (ok bool, key string) {
	switch {
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		return false, "timeout"
	case err != nil:
		return false, "transport"
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return true, ""
	}
	var env errorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		return false, env.Error.Code
	}
	return false, "http_" + strconv.Itoa(resp.StatusCode)
}

// Run drives one open-loop load run and reports it.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("loadgen: Factory is required")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be positive, got %s", cfg.Duration)
	}
	mix := cfg.Mix
	if mix == (Mix{}) {
		mix = DefaultMix
	}
	weights := map[Class]float64{
		ClassInteractive: mix.Interactive,
		ClassBatch:       mix.Batch,
		ClassCacheHit:    mix.CacheHit,
	}
	var totalWeight float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("loadgen: negative mix weight")
		}
		totalWeight += w
	}
	if totalWeight == 0 {
		return nil, fmt.Errorf("loadgen: mix selects no class")
	}
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = 1
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 256
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.New()
	}

	recs := make(map[Class]*classRecorder, len(classOrder))
	for _, c := range classOrder {
		if weights[c] == 0 {
			continue
		}
		label := obs.L("class", string(c))
		recs[c] = &classRecorder{
			offered:   reg.Counter(metricLoadRequests, "Load-harness arrivals, by class and outcome.", label, obs.L("outcome", "offered")),
			shed:      reg.Counter(metricLoadShed, "Arrivals dropped at the local in-flight cap, by class.", label),
			ok:        reg.Counter(metricLoadRequests, "Load-harness arrivals, by class and outcome.", label, obs.L("outcome", "ok")),
			lat:       reg.Histogram(metricLoadLatency, "End-to-end request latency, by class.", obs.HighResLatencyBuckets, label),
			errCounts: make(map[string]int64),
		}
	}
	inFlight := reg.Gauge(metricLoadInFlight, "Requests currently outstanding from the load harness.")

	// pick draws a class by normalized weight, deterministically from rng.
	pick := func(rng *rand.Rand) Class {
		x := rng.Float64() * totalWeight
		for _, c := range classOrder {
			if w := weights[c]; w > 0 {
				if x < w {
					return c
				}
				x -= w
			}
		}
		return ClassInteractive
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(cfg.Duration)
	next := start
	seq := 0

arrivals:
	for {
		// Exponential inter-arrival: Poisson process at cfg.Rate.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if next.After(end) {
			break
		}
		class := pick(rng)
		tenant := "t" + strconv.Itoa(rng.Intn(tenants))
		seq++
		if sleep := time.Until(next); sleep > 0 {
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				break arrivals
			}
		}
		rec := recs[class]
		rec.offered.Inc()
		select {
		case sem <- struct{}{}:
		default:
			rec.shed.Inc()
			continue
		}
		req := cfg.Factory(class, tenant, seq)
		wg.Add(1)
		inFlight.Inc()
		go func(rec *classRecorder, req Request) {
			defer func() { <-sem; inFlight.Dec(); wg.Done() }()
			t0 := time.Now()
			httpReq, err := http.NewRequestWithContext(ctx, req.Method,
				cfg.BaseURL+req.Path, bytes.NewReader(req.Body))
			if err != nil {
				rec.fail("transport")
				return
			}
			httpReq.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(httpReq)
			var body []byte
			if err == nil {
				var buf bytes.Buffer
				_, rerr := buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if rerr == nil {
					body = buf.Bytes()
				}
			}
			if ok, key := classify(resp, body, err); ok {
				rec.success(time.Since(t0))
			} else {
				rec.fail(key)
			}
		}(rec, req)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &Report{
		Rate:        cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Seed:        cfg.Seed,
		Errors:      make(map[string]int64),
	}
	for _, c := range classOrder {
		rec := recs[c]
		if rec == nil {
			continue
		}
		cr := ClassReport{
			Class:      c,
			Offered:    rec.offered.Value(),
			Shed:       rec.shed.Value(),
			Completed:  rec.completed,
			OK:         rec.ok.Value(),
			P50MS:      rec.lat.Quantile(0.50) * 1000,
			P95MS:      rec.lat.Quantile(0.95) * 1000,
			P99MS:      rec.lat.Quantile(0.99) * 1000,
			Throughput: float64(rec.ok.Value()) / elapsed.Seconds(),
		}
		if n := rec.lat.Count(); n > 0 {
			cr.MeanMS = rec.lat.Sum() / float64(n) * 1000
		}
		for _, b := range rec.lat.Buckets() {
			lb := LatencyBucket{LeMS: b.UpperBound * 1000, Count: b.Count}
			if math.IsInf(b.UpperBound, 1) {
				lb.LeMS = -1
			}
			cr.LatencyBuckets = append(cr.LatencyBuckets, lb)
		}
		if len(rec.errCounts) > 0 {
			cr.Errors = make(map[string]int64, len(rec.errCounts))
			for k, v := range rec.errCounts {
				cr.Errors[k] = v
				report.Errors[k] += v
			}
		}
		report.Offered += cr.Offered
		report.Shed += cr.Shed
		report.OK += cr.OK
		report.Classes = append(report.Classes, cr)
	}
	if len(report.Errors) == 0 {
		report.Errors = nil
	}
	report.Goodput = float64(report.OK) / elapsed.Seconds()
	if report.Offered > 0 {
		report.AchievedRatio = float64(report.OK) / float64(report.Offered)
	}
	sort.Slice(report.Classes, func(i, k int) bool {
		return classIndex(report.Classes[i].Class) < classIndex(report.Classes[k].Class)
	})
	return report, nil
}

func classIndex(c Class) int {
	for i, o := range classOrder {
		if o == c {
			return i
		}
	}
	return len(classOrder)
}
