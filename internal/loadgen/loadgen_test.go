package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okStub answers everything 200 with an empty JSON object.
func okStub() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}))
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	report, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return report
}

func passthroughFactory(class Class, tenant string, seq int) Request {
	path := "/v1/diagnose"
	if class != ClassInteractive {
		path = "/v1/jobs"
	}
	body, _ := json.Marshal(map[string]any{"class": string(class), "tenant": tenant, "seq": seq})
	return Request{Method: http.MethodPost, Path: path, Body: body}
}

func TestRunSeedPinsOfferedWorkload(t *testing.T) {
	srv := okStub()
	defer srv.Close()
	cfg := Config{
		BaseURL:  srv.URL,
		Seed:     7,
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Tenants:  4,
		Factory:  passthroughFactory,
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Offered == 0 {
		t.Fatalf("no arrivals offered at 2000/s over 250ms")
	}
	if a.Offered != b.Offered {
		t.Fatalf("same seed, different offered totals: %d vs %d", a.Offered, b.Offered)
	}
	for _, class := range classOrder {
		ca, cb := a.Class(class), b.Class(class)
		if (ca == nil) != (cb == nil) {
			t.Fatalf("class %s present in one run only", class)
		}
		if ca != nil && ca.Offered != cb.Offered {
			t.Fatalf("class %s offered %d vs %d across same-seed runs", class, ca.Offered, cb.Offered)
		}
	}
	c := mustRun(t, Config{
		BaseURL: srv.URL, Seed: 8, Rate: 2000,
		Duration: 250 * time.Millisecond, Tenants: 4, Factory: passthroughFactory,
	})
	if c.Offered == a.Offered {
		t.Logf("note: different seeds coincidentally offered the same total (%d)", a.Offered)
	}
}

func TestRunErrorTaxonomy(t *testing.T) {
	// Interactive succeeds; sweep submissions get the queue_full envelope;
	// cache-hit submissions crash with a bare 500.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var doc struct {
			Class string `json:"class"`
		}
		body := new(bytes.Buffer)
		body.ReadFrom(r.Body)
		json.Unmarshal(body.Bytes(), &doc)
		switch Class(doc.Class) {
		case ClassBatch:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"queue is full"}}`))
		case ClassCacheHit:
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			w.Write([]byte("{}"))
		}
	}))
	defer srv.Close()

	report := mustRun(t, Config{
		BaseURL:  srv.URL,
		Seed:     3,
		Rate:     1500,
		Duration: 300 * time.Millisecond,
		Mix:      Mix{Interactive: 1, Batch: 1, CacheHit: 1},
		Factory:  passthroughFactory,
	})
	ic := report.Class(ClassInteractive)
	if ic == nil || ic.OK == 0 || len(ic.Errors) != 0 {
		t.Fatalf("interactive class = %+v, want successes and no errors", ic)
	}
	if ic.P50MS <= 0 || ic.P99MS < ic.P50MS {
		t.Fatalf("interactive quantiles p50=%g p99=%g not sane", ic.P50MS, ic.P99MS)
	}
	bc := report.Class(ClassBatch)
	if bc == nil || bc.OK != 0 || bc.Errors["queue_full"] != bc.Completed {
		t.Fatalf("batch class = %+v, want every completion classified queue_full", bc)
	}
	cc := report.Class(ClassCacheHit)
	if cc == nil || cc.Errors["http_500"] != cc.Completed {
		t.Fatalf("cachehit class = %+v, want every completion classified http_500", cc)
	}
	if report.Errors["queue_full"] != bc.Errors["queue_full"] || report.Errors["http_500"] != cc.Errors["http_500"] {
		t.Fatalf("aggregate taxonomy %v does not match per-class counts", report.Errors)
	}
	if report.AchievedRatio >= 1 {
		t.Fatalf("achieved ratio %g should reflect the failed classes", report.AchievedRatio)
	}
}

func TestRunShedsAtInFlightCap(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		w.Write([]byte("{}"))
	}))
	defer srv.Close()
	done := make(chan *Report, 1)
	go func() {
		report := mustRun(t, Config{
			BaseURL:     srv.URL,
			Seed:        5,
			Rate:        500,
			Duration:    200 * time.Millisecond,
			MaxInFlight: 2,
			Mix:         Mix{Interactive: 1},
			Factory:     passthroughFactory,
		})
		done <- report
	}()
	time.Sleep(350 * time.Millisecond)
	close(block) // release the two in-flight requests so Run can finish
	report := <-done
	if report.Shed == 0 {
		t.Fatalf("expected shed arrivals with 2 in-flight slots at 500/s, report: %+v", report)
	}
	if report.OK != 2 {
		t.Fatalf("OK = %d, want exactly the 2 in-flight slots", report.OK)
	}
	ic := report.Class(ClassInteractive)
	if ic.Offered != ic.Shed+ic.Completed {
		t.Fatalf("offered %d != shed %d + completed %d", ic.Offered, ic.Shed, ic.Completed)
	}
}

func TestRunValidation(t *testing.T) {
	base := Config{BaseURL: "http://x", Rate: 1, Duration: time.Second, Factory: passthroughFactory}
	for name, mutate := range map[string]func(*Config){
		"no base url": func(c *Config) { c.BaseURL = "" },
		"no factory":  func(c *Config) { c.Factory = nil },
		"zero rate":   func(c *Config) { c.Rate = 0 },
		"no duration": func(c *Config) { c.Duration = 0 },
		"bad mix":     func(c *Config) { c.Mix = Mix{Interactive: -1, Batch: 1} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted an invalid config", name)
		}
	}
}

// synthReport builds a Report whose interactive class has the given p99.
func synthReport(rate, p99MS, achieved, goodput float64) *Report {
	return &Report{
		Rate:          rate,
		AchievedRatio: achieved,
		Goodput:       goodput,
		OK:            100,
		Offered:       100,
		Classes: []ClassReport{
			{Class: ClassInteractive, OK: 60, P99MS: p99MS},
		},
	}
}

func TestSLOMet(t *testing.T) {
	slo := SLO{InteractiveP99MS: 100, MinAchievedRatio: 0.9}
	if !slo.met(synthReport(10, 50, 0.99, 9)) {
		t.Fatalf("healthy step should meet the SLO")
	}
	if slo.met(synthReport(10, 150, 0.99, 9)) {
		t.Fatalf("p99 over bound should fail the SLO")
	}
	if slo.met(synthReport(10, 50, 0.5, 5)) {
		t.Fatalf("low achieved ratio should fail the SLO")
	}
	noInteractive := &Report{AchievedRatio: 1, Classes: []ClassReport{{Class: ClassBatch, OK: 10}}}
	if slo.met(noInteractive) {
		t.Fatalf("a step with no interactive completions cannot demonstrate the SLO")
	}
}

func baselineRecord() *Record {
	knee := synthReport(100, 50, 0.99, 95)
	return &Record{KneeRate: 100, Knee: knee, Steps: []*Report{knee}}
}

func TestGatePassesOnEquivalentRun(t *testing.T) {
	if v := Gate(baselineRecord(), baselineRecord(), DefaultTolerance); len(v) != 0 {
		t.Fatalf("identical runs should pass, got %v", v)
	}
}

func TestGateFlagsLostKnee(t *testing.T) {
	fresh := &Record{KneeRate: 0}
	v := Gate(baselineRecord(), fresh, DefaultTolerance)
	if len(v) != 1 || !strings.Contains(v[0], "no step met the SLO") {
		t.Fatalf("violations = %v", v)
	}
}

func TestGateFlagsRegressions(t *testing.T) {
	tol := Tolerance{P99Frac: 1.0, GoodputFrac: 0.4}
	fresh := &Record{KneeRate: 25, Knee: synthReport(25, 150, 0.99, 20)}
	v := Gate(baselineRecord(), fresh, tol)
	var sawRate, sawGoodput, sawP99 bool
	for _, s := range v {
		switch {
		case strings.Contains(s, "knee rate regressed"):
			sawRate = true
		case strings.Contains(s, "knee goodput regressed"):
			sawGoodput = true
		case strings.Contains(s, "interactive p99 at knee regressed"):
			sawP99 = true
		}
	}
	if !sawRate || !sawGoodput || !sawP99 {
		t.Fatalf("violations = %v, want rate, goodput and p99 regressions flagged", v)
	}
	// The same numbers pass with tolerances wide enough to cover them.
	loose := Tolerance{P99Frac: 3, GoodputFrac: 0.9}
	if v := Gate(baselineRecord(), fresh, loose); len(v) != 0 {
		t.Fatalf("loose tolerance should pass, got %v", v)
	}
}

func TestGateRoundTripsThroughJSON(t *testing.T) {
	rec := baselineRecord()
	rec.Experiment = "e16_load"
	rec.SLO = DefaultSLO
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v := Gate(rec, &back, DefaultTolerance); len(v) != 0 {
		t.Fatalf("record should gate cleanly against its own JSON round trip: %v", v)
	}
}

func TestPaperWorkloadFactory(t *testing.T) {
	factory, err := PaperWorkload()
	if err != nil {
		t.Fatalf("PaperWorkload: %v", err)
	}
	inter := factory(ClassInteractive, "t0", 1)
	if inter.Path != "/v1/diagnose" {
		t.Fatalf("interactive path = %q", inter.Path)
	}
	var diag struct {
		Spec  json.RawMessage   `json:"spec"`
		IUT   json.RawMessage   `json:"iut"`
		Suite []json.RawMessage `json:"suite"`
	}
	if err := json.Unmarshal(inter.Body, &diag); err != nil {
		t.Fatalf("interactive body: %v", err)
	}
	if len(diag.Spec) == 0 || len(diag.IUT) == 0 || len(diag.Suite) == 0 {
		t.Fatalf("interactive body missing spec/iut/suite: %s", inter.Body)
	}

	b1 := factory(ClassBatch, "t0", 1)
	b2 := factory(ClassBatch, "t0", 2)
	if b1.Path != "/v1/jobs" || bytes.Equal(b1.Body, b2.Body) {
		t.Fatalf("batch payloads must be unique per arrival")
	}

	// Cache-hit request documents must be byte-identical across arrivals
	// and tenants — that is what makes them cache hits.
	var c1, c2 struct {
		Kind    string          `json:"kind"`
		Request json.RawMessage `json:"request"`
	}
	if err := json.Unmarshal(factory(ClassCacheHit, "t0", 3).Body, &c1); err != nil {
		t.Fatalf("cachehit body: %v", err)
	}
	if err := json.Unmarshal(factory(ClassCacheHit, "t9", 4).Body, &c2); err != nil {
		t.Fatalf("cachehit body: %v", err)
	}
	if c1.Kind != "diagnose" || !bytes.Equal(c1.Request, c2.Request) {
		t.Fatalf("cachehit request documents differ across arrivals")
	}
}

// TestRunBenchSingleStep drives the full in-process server once at a low
// rate: the integration check that the harness, the jobs surface and the
// tenant field all fit together.
func TestRunBenchSingleStep(t *testing.T) {
	if testing.Short() {
		t.Skip("in-process load bench in -short mode")
	}
	rec, err := RunBench(context.Background(), BenchOptions{
		Seed:         42,
		Rates:        []float64{40},
		StepDuration: 1200 * time.Millisecond,
		Workers:      2,
		Tenants:      3,
	})
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if len(rec.Steps) != 1 || rec.Experiment != "e16_load" || rec.GoMaxProcs == 0 {
		t.Fatalf("record = %+v", rec)
	}
	step := rec.Steps[0]
	if step.Offered == 0 {
		t.Fatalf("no offered load in bench step")
	}
	ic := step.Class(ClassInteractive)
	if ic == nil || ic.OK == 0 {
		t.Fatalf("interactive class saw no successes: %+v", step)
	}
	if step.Class(ClassBatch) == nil || step.Class(ClassCacheHit) == nil {
		t.Fatalf("default mix should exercise all three classes: %+v", step.Classes)
	}
	for _, c := range step.Classes {
		if n := c.Errors["transport"] + c.Errors["timeout"]; n == c.Completed && c.Completed > 0 {
			t.Fatalf("class %s never reached the server: %+v", c.Class, c)
		}
	}
}
