package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// SLO is the service-level objective a load step must meet to count as
// sustainable.
type SLO struct {
	// InteractiveP99MS bounds the interactive class's p99 latency.
	InteractiveP99MS float64 `json:"interactive_p99_ms"`
	// MinAchievedRatio bounds goodput: at least this fraction of offered
	// requests must succeed (rejections and shed arrivals both count
	// against it).
	MinAchievedRatio float64 `json:"min_achieved_ratio"`
}

// DefaultSLO is the committed-baseline objective: interactive p99 under
// 250ms with at least 95% of offered load absorbed.
var DefaultSLO = SLO{InteractiveP99MS: 250, MinAchievedRatio: 0.95}

// met reports whether a step satisfies the SLO. A step with no
// interactive completions cannot demonstrate the latency bound and fails.
func (s SLO) met(step *Report) bool {
	ic := step.Class(ClassInteractive)
	if ic == nil || ic.OK == 0 {
		return false
	}
	return ic.P99MS <= s.InteractiveP99MS && step.AchievedRatio >= s.MinAchievedRatio
}

// Record is the committed BENCH_load.json shape: one ladder run with the
// per-step reports and the measured saturation knee.
type Record struct {
	Experiment string `json:"experiment"`
	System     string `json:"system"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`
	// Workers/TenantRate describe the server under test so the record is
	// reproducible.
	Workers    int       `json:"workers"`
	TenantRate float64   `json:"tenant_rate,omitempty"`
	Tenants    int       `json:"tenants"`
	SLO        SLO       `json:"slo"`
	Steps      []*Report `json:"steps"`
	// KneeRate is the highest offered rate (diagnoses+jobs per second)
	// whose step met the SLO — the "max sustainable" row. Zero when no
	// step met it.
	KneeRate float64 `json:"knee_rate_per_sec"`
	// Knee repeats that step's report for direct reading.
	Knee *Report `json:"knee,omitempty"`
}

// RunLadder runs cfg once per rate (ascending) and selects the knee: the
// highest rate whose report meets the SLO. Each step reuses cfg with only
// Rate replaced, so one seed pins every step's workload.
func RunLadder(ctx context.Context, cfg Config, rates []float64, slo SLO) (*Record, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: ladder needs at least one rate")
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	rec := &Record{
		Seed:    cfg.Seed,
		Tenants: cfg.Tenants,
		SLO:     slo,
	}
	for _, rate := range sorted {
		stepCfg := cfg
		stepCfg.Rate = rate
		stepCfg.Registry = nil // fresh measurement families per step
		report, err := Run(ctx, stepCfg)
		if err != nil {
			return nil, fmt.Errorf("ladder step %g req/s: %w", rate, err)
		}
		rec.Steps = append(rec.Steps, report)
		if slo.met(report) {
			rec.KneeRate = rate
			rec.Knee = report
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// Tolerance is the slack the regression gate grants a fresh run before a
// difference from the committed baseline counts as a regression. Load
// benches are noisy — especially on shared CI machines — so both knobs are
// fractional.
type Tolerance struct {
	// P99Frac allows the fresh interactive p99 at the knee to exceed the
	// baseline's by this fraction (0.5 = +50%).
	P99Frac float64 `json:"p99_frac"`
	// GoodputFrac allows the fresh knee rate and knee goodput to fall
	// short of the baseline's by this fraction (0.25 = -25%).
	GoodputFrac float64 `json:"goodput_frac"`
	// BodyFrac allows the fresh interactive latency CDF at the knee to sit
	// below the baseline's by this many fraction points at any bucket bound
	// (0.15 = the share of requests completing within any given bound may
	// drop by up to 15 points). This is the whole-distribution check: a run
	// whose p99 still squeaks under the quantile tolerance but whose body
	// shifted wholesale to slower buckets fails here. Zero selects
	// DefaultTolerance's value when the baseline carries bucket data.
	BodyFrac float64 `json:"body_frac,omitempty"`
}

// DefaultTolerance is deliberately loose: the gate exists to catch
// step-function regressions (a lost knee step, p99 blowing through the
// SLO, the latency body migrating to slower buckets), not
// single-digit-percent noise.
var DefaultTolerance = Tolerance{P99Frac: 1.0, GoodputFrac: 0.4, BodyFrac: 0.15}

// Gate compares a fresh run against the committed baseline and returns
// one violation string per broken objective; empty means the gate passes.
func Gate(baseline, fresh *Record, tol Tolerance) []string {
	var violations []string
	if baseline.KneeRate > 0 && fresh.KneeRate == 0 {
		violations = append(violations,
			fmt.Sprintf("no step met the SLO (baseline knee %g req/s)", baseline.KneeRate))
		return violations
	}
	if baseline.Knee == nil || fresh.Knee == nil {
		return violations // baseline never had a knee: nothing to regress against
	}
	if minRate := baseline.KneeRate * (1 - tol.GoodputFrac); fresh.KneeRate < minRate {
		violations = append(violations, fmt.Sprintf(
			"knee rate regressed: %g req/s < %.3g (baseline %g - %.0f%% tolerance)",
			fresh.KneeRate, minRate, baseline.KneeRate, tol.GoodputFrac*100))
	}
	if minGoodput := baseline.Knee.Goodput * (1 - tol.GoodputFrac); fresh.Knee.Goodput < minGoodput {
		violations = append(violations, fmt.Sprintf(
			"knee goodput regressed: %.1f/s < %.1f (baseline %.1f - %.0f%% tolerance)",
			fresh.Knee.Goodput, minGoodput, baseline.Knee.Goodput, tol.GoodputFrac*100))
	}
	bi, fi := baseline.Knee.Class(ClassInteractive), fresh.Knee.Class(ClassInteractive)
	if bi != nil && fi != nil && bi.P99MS > 0 {
		if maxP99 := bi.P99MS * (1 + tol.P99Frac); fi.P99MS > maxP99 {
			violations = append(violations, fmt.Sprintf(
				"interactive p99 at knee regressed: %.1fms > %.1fms (baseline %.1fms + %.0f%% tolerance)",
				fi.P99MS, maxP99, bi.P99MS, tol.P99Frac*100))
		}
		violations = append(violations, gateBody(bi, fi, tol)...)
	}
	return violations
}

// gateBody compares the whole interactive latency distribution at the knee:
// at every bucket bound shared by both records, the fraction of successful
// requests completing within that bound must not drop by more than BodyFrac.
// Three quantiles cannot see a body-wide shift that stays inside each
// quantile's own tolerance; the CDF comparison can. Records without bucket
// data (pre-histogram baselines) skip the check.
func gateBody(baseline, fresh *ClassReport, tol Tolerance) []string {
	body := tol.BodyFrac
	if body <= 0 {
		body = DefaultTolerance.BodyFrac
	}
	bc, bTotal := cumulativeFractions(baseline.LatencyBuckets)
	fc, fTotal := cumulativeFractions(fresh.LatencyBuckets)
	if bTotal == 0 || fTotal == 0 || len(bc) != len(fc) {
		return nil // no bucket data, or layouts differ: quantile checks stand alone
	}
	var violations []string
	for i := range bc {
		if baseline.LatencyBuckets[i].LeMS != fresh.LatencyBuckets[i].LeMS {
			return nil // different ladders are not comparable bucket-wise
		}
		if baseline.LatencyBuckets[i].LeMS < 0 {
			continue // overflow bucket: its cumulative fraction is always 1
		}
		if fc[i] < bc[i]-body {
			violations = append(violations, fmt.Sprintf(
				"interactive latency body at knee regressed: %.0f%% of requests within %.0fms, baseline %.0f%% (tolerance %.0f points)",
				fc[i]*100, baseline.LatencyBuckets[i].LeMS, bc[i]*100, body*100))
			// One violation per comparison keeps the report readable: the
			// first breached bound is where the body shift starts.
			break
		}
	}
	return violations
}

// cumulativeFractions converts per-bucket counts into the CDF sampled at the
// bucket bounds. The second return is the total count (0 = no data).
func cumulativeFractions(buckets []LatencyBucket) ([]float64, uint64) {
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		return nil, 0
	}
	out := make([]float64, len(buckets))
	var cum uint64
	for i, b := range buckets {
		cum += b.Count
		out[i] = float64(cum) / float64(total)
	}
	return out, total
}

// ReadRecord loads a committed BENCH_load.json.
func ReadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// DefaultRates is the committed ladder: low steps establish the uncontended
// latency floor, upper steps walk past the 1-CPU container's knee (400
// req/s sits just under the default SLO there; 800 breaches it).
var DefaultRates = []float64{25, 50, 100, 200, 400, 800}

// DefaultStepDuration keeps a full default ladder under ~15s of wall time
// while still offering hundreds of arrivals per upper step.
const DefaultStepDuration = 3 * time.Second
