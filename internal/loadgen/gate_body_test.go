package loadgen

import (
	"strings"
	"testing"
	"time"
)

// withBuckets attaches an interactive latency histogram (per-bucket counts
// over the given ms ladder, overflow last with LeMS -1) to a synthetic
// report's knee class.
func withBuckets(r *Report, leMS []float64, counts []uint64) *Report {
	ic := r.Class(ClassInteractive)
	ic.LatencyBuckets = nil
	for i, le := range leMS {
		ic.LatencyBuckets = append(ic.LatencyBuckets, LatencyBucket{LeMS: le, Count: counts[i]})
	}
	return r
}

var bodyLadder = []float64{10, 50, 100, 250, -1}

// TestGateCatchesBodyRegressionP99Passes is the reason the gate compares
// whole histograms: the fresh run's p99 is identical to the baseline's, so
// every quantile check passes, but the latency body migrated wholesale from
// the 10ms bucket into the 50ms one — a 60-point CDF drop only the
// bucket-wise comparison can see.
func TestGateCatchesBodyRegressionP99Passes(t *testing.T) {
	baseline := &Record{KneeRate: 100,
		Knee: withBuckets(synthReport(100, 200, 0.99, 95), bodyLadder, []uint64{90, 5, 3, 2, 0})}
	fresh := &Record{KneeRate: 100,
		Knee: withBuckets(synthReport(100, 200, 0.99, 95), bodyLadder, []uint64{30, 65, 3, 2, 0})}

	v := Gate(baseline, fresh, DefaultTolerance)
	var sawBody, sawP99 bool
	for _, s := range v {
		if strings.Contains(s, "latency body at knee regressed") {
			sawBody = true
		}
		if strings.Contains(s, "p99 at knee regressed") {
			sawP99 = true
		}
	}
	if sawP99 {
		t.Fatalf("p99 was identical yet flagged: %v", v)
	}
	if !sawBody {
		t.Fatalf("body regression not flagged: %v", v)
	}
}

func TestGateBodyWithinToleranceAndCompat(t *testing.T) {
	baseline := &Record{KneeRate: 100,
		Knee: withBuckets(synthReport(100, 50, 0.99, 95), bodyLadder, []uint64{90, 5, 3, 2, 0})}

	// A small shift inside BodyFrac passes.
	fresh := &Record{KneeRate: 100,
		Knee: withBuckets(synthReport(100, 50, 0.99, 95), bodyLadder, []uint64{85, 10, 3, 2, 0})}
	if v := Gate(baseline, fresh, DefaultTolerance); len(v) != 0 {
		t.Fatalf("5-point shift inside tolerance flagged: %v", v)
	}

	// A fresh record without bucket data (old format) falls back to the
	// quantile checks instead of failing spuriously.
	noBuckets := &Record{KneeRate: 100, Knee: synthReport(100, 50, 0.99, 95)}
	if v := Gate(baseline, noBuckets, DefaultTolerance); len(v) != 0 {
		t.Fatalf("bucket-less fresh record flagged: %v", v)
	}
	if v := Gate(noBuckets, &Record{KneeRate: 100,
		Knee: withBuckets(synthReport(100, 50, 0.99, 95), bodyLadder, []uint64{10, 80, 5, 5, 0})}, DefaultTolerance); len(v) != 0 {
		t.Fatalf("bucket-less baseline flagged: %v", v)
	}

	// Mismatched ladders are not comparable bucket-wise.
	otherLadder := []float64{5, 25, 100, 250, -1}
	other := &Record{KneeRate: 100,
		Knee: withBuckets(synthReport(100, 50, 0.99, 95), otherLadder, []uint64{10, 80, 5, 5, 0})}
	if v := Gate(baseline, other, DefaultTolerance); len(v) != 0 {
		t.Fatalf("mismatched ladder flagged: %v", v)
	}
}

// TestRunReportCarriesBuckets checks the harness actually records the
// histogram the gate consumes.
func TestRunReportCarriesBuckets(t *testing.T) {
	srv := okStub()
	defer srv.Close()
	rep := mustRun(t, Config{
		BaseURL:  srv.URL,
		Seed:     11,
		Rate:     1500,
		Duration: 250 * time.Millisecond,
		Factory:  passthroughFactory,
	})
	ic := rep.Class(ClassInteractive)
	if ic == nil || len(ic.LatencyBuckets) == 0 {
		t.Fatalf("interactive class carries no latency buckets: %+v", ic)
	}
	var total uint64
	sawOverflow := false
	for _, b := range ic.LatencyBuckets {
		total += b.Count
		if b.LeMS < 0 {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Errorf("no overflow bucket in %+v", ic.LatencyBuckets)
	}
	if total != uint64(ic.OK) {
		t.Errorf("bucket total %d != successful requests %d", total, ic.OK)
	}
}
