package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/server"
)

// This file is experiment E16: the committed load benchmark. It stands up
// the real HTTP service in-process (full middleware chain, jobs manager,
// WAL, tenant admission — everything but the network between two
// machines), drives the paper's Figure 1 workload up a rate ladder with
// the open-loop generator, and reports the saturation knee. The committed
// BENCH_load.json is this run's Record; CI re-runs it and gates on the
// committed numbers (see Gate).
//
// Each ladder step gets a fresh server. An open-loop generator keeps
// offering work to a saturated server, so a shared server would carry one
// step's queue backlog into the next and the upper steps would measure the
// backlog, not the rate. Fresh state per step keeps every step's report a
// function of its own offered rate — the property that makes the knee a
// knee.

// BenchOptions tunes E16. The zero value (plus a seed) reproduces the
// committed record.
type BenchOptions struct {
	Seed int64
	// Rates is the offered-rate ladder; empty selects DefaultRates.
	Rates []float64
	// StepDuration bounds each step's arrival window; 0 selects
	// DefaultStepDuration.
	StepDuration time.Duration
	// Workers sizes the jobs worker pool; 0 selects 2.
	Workers int
	// Tenants spreads submissions; 0 selects 4.
	Tenants int
	// TenantRate enables per-tenant fair admission on the server under
	// test (submissions per second per tenant); 0 disables.
	TenantRate  float64
	TenantBurst int
	// Mix weights the classes; zero selects DefaultMix.
	Mix Mix
	// SLO decides the knee; zero selects DefaultSLO.
	SLO SLO
}

// paperSuiteDoc renders the paper's test suite in wire form, with the
// first case renamed by tag when non-empty (a payload-uniqueness knob:
// batch sweeps must not collide in the content-addressed result cache).
func paperSuiteDoc(tag string) []map[string]any {
	var out []map[string]any
	for i, tc := range paper.TestSuite() {
		name := tc.Name
		if i == 0 && tag != "" {
			name = tc.Name + "-" + tag
		}
		inputs := make([]string, len(tc.Inputs))
		for k, in := range tc.Inputs {
			inputs[k] = in.String()
		}
		out = append(out, map[string]any{"name": name, "inputs": inputs})
	}
	return out
}

// PaperWorkload builds the Factory for the Figure 1 workload:
//
//   - interactive: POST /v1/diagnose of the faulty implementation against
//     the spec with the paper's suite — the full localize-and-confirm
//     pipeline per request.
//   - batch: POST /v1/jobs sweep submissions, payload made unique per
//     arrival so every one is real queued work.
//   - cachehit: POST /v1/jobs duplicate diagnose submissions of one fixed
//     payload — after the first completes they answer from the result
//     cache without consuming a worker.
func PaperWorkload() (Factory, error) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		return nil, fmt.Errorf("paper workload: %w", err)
	}
	specRaw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("paper workload: marshal spec: %w", err)
	}
	iutRaw, err := json.Marshal(iut)
	if err != nil {
		return nil, fmt.Errorf("paper workload: marshal iut: %w", err)
	}
	diagnoseDoc := map[string]any{
		"spec":  json.RawMessage(specRaw),
		"iut":   json.RawMessage(iutRaw),
		"suite": paperSuiteDoc(""),
	}
	interactiveBody, err := json.Marshal(diagnoseDoc)
	if err != nil {
		return nil, fmt.Errorf("paper workload: %w", err)
	}
	return func(class Class, tenant string, seq int) Request {
		switch class {
		case ClassBatch:
			body, _ := json.Marshal(map[string]any{
				"kind":     "sweep",
				"priority": "batch",
				"tenant":   tenant,
				"request": map[string]any{
					"spec":    json.RawMessage(specRaw),
					"suite":   paperSuiteDoc(strconv.Itoa(seq)),
					"workers": 1,
				},
			})
			return Request{Method: http.MethodPost, Path: "/v1/jobs", Body: body}
		case ClassCacheHit:
			body, _ := json.Marshal(map[string]any{
				"kind":    "diagnose",
				"tenant":  tenant,
				"request": diagnoseDoc,
			})
			return Request{Method: http.MethodPost, Path: "/v1/jobs", Body: body}
		default:
			return Request{Method: http.MethodPost, Path: "/v1/diagnose", Body: interactiveBody}
		}
	}, nil
}

// RunBench runs E16 and returns the Record for BENCH_load.json.
func RunBench(ctx context.Context, opts BenchOptions) (*Record, error) {
	rates := opts.Rates
	if len(rates) == 0 {
		rates = DefaultRates
	}
	stepDur := opts.StepDuration
	if stepDur <= 0 {
		stepDur = DefaultStepDuration
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 2
	}
	tenants := opts.Tenants
	if tenants <= 0 {
		tenants = 4
	}
	slo := opts.SLO
	if slo == (SLO{}) {
		slo = DefaultSLO
	}
	factory, err := PaperWorkload()
	if err != nil {
		return nil, err
	}

	rec := &Record{
		Experiment: "e16_load",
		System:     "paper_figure1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       opts.Seed,
		Workers:    workers,
		TenantRate: opts.TenantRate,
		Tenants:    tenants,
		SLO:        slo,
	}
	for _, rate := range rates {
		report, err := runBenchStep(ctx, opts, factory, workers, tenants, rate, stepDur)
		if err != nil {
			return nil, fmt.Errorf("bench step %g req/s: %w", rate, err)
		}
		rec.Steps = append(rec.Steps, report)
		if slo.met(report) {
			rec.KneeRate = rate
			rec.Knee = report
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// runBenchStep stands up a fresh in-process server and drives one rate.
func runBenchStep(ctx context.Context, opts BenchOptions, factory Factory, workers, tenants int, rate float64, stepDur time.Duration) (*Report, error) {
	dir, err := os.MkdirTemp("", "cfsmdiag-loadbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	svc, err := server.NewService(server.Config{
		RequestTimeout:  10 * time.Second,
		EnableJobs:      true,
		JobsDir:         dir,
		JobsWorkers:     workers,
		JobsQueueDepth:  512,
		JobsTenantRate:  opts.TenantRate,
		JobsTenantBurst: opts.TenantBurst,
	})
	if err != nil {
		return nil, err
	}

	// A real listener and http.Server rather than httptest: this is
	// production code, and importing net/http/httptest outside tests drags
	// its flag registrations into every binary that links this package.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		svc.Close(closeCtx)
		cancel()
		return nil, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	serveDone := make(chan struct{})
	go func() {
		hs.Serve(ln)
		close(serveDone)
	}()

	report, runErr := Run(ctx, Config{
		BaseURL:     "http://" + ln.Addr().String(),
		Seed:        opts.Seed,
		Rate:        rate,
		Duration:    stepDur,
		Mix:         opts.Mix,
		Tenants:     tenants,
		MaxInFlight: 512,
		Client:      &http.Client{Timeout: 15 * time.Second},
		Factory:     factory,
	})

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(shutCtx)
	svc.Close(shutCtx)
	cancel()
	<-serveDone
	return report, runErr
}
