package testgen

import (
	"cfsmdiag/internal/cfsm"
)

// silentObs reports an observation invisible to every local observer: ε (no
// output) or the Null reset output. Mirrors ports.Silent; testgen cannot
// import internal/ports (core sits between them), so the two-line predicate
// is duplicated here and pinned equal by the ports test suite.
func silentObs(o cfsm.Observation) bool {
	return o.Sym == cfsm.Epsilon || o.Sym == cfsm.Null
}

// ProjectionDistinguish finds a shortest input sequence whose observation
// difference between the two variants is visible under distributed
// observation: the sequences differ at a step where at least one side emits
// a real (non-silent) output. Such a difference is final for every port map
// — truncating the test at that step leaves either two conflicting events at
// the same observer, or an event one observer records that the other run
// never produces there — whereas a step where both sides stay silent (e.g.
// ε at different ports) is invisible to every local observer, however the
// machines are grouped. The search therefore needs no port map: it is the
// distinguishing-sequence problem of van den Bos & Vaandrager's distributed
// state-identification setting, specialized to the synchronized-input model.
//
// globalOnly reports the honest failure mode: no visibly distinguishing
// sequence was found within the exploration limit, but a silence-only
// difference (visible to a hypothetical global observer with a clock)
// exists. Callers surface it instead of conflating "locally ambiguous" with
// "equivalent".
func ProjectionDistinguish(a, b Variant, avoid RefSet) (seq []cfsm.Input, ok, globalOnly bool) {
	return ProjectionDistinguishOver(a, b, AllInputs(a.Sys), avoid)
}

// ProjectionDistinguishOver is ProjectionDistinguish over a restricted input
// universe, mirroring DistinguishOver.
func ProjectionDistinguishOver(a, b Variant, inputs []cfsm.Input, avoid RefSet) (seq []cfsm.Input, ok, globalOnly bool) {
	if a.Sys.N() != b.Sys.N() {
		return nil, false, false
	}
	type node struct {
		ca, cb cfsm.Config
		path   []cfsm.Input
	}
	key := func(ca, cb cfsm.Config) string { return ca.Key() + "||" + cb.Key() }
	seen := map[string]bool{key(a.Cfg, b.Cfg): true}
	frontier := []node{{ca: a.Cfg, cb: b.Cfg}}
	for len(frontier) > 0 && len(seen) < searchLimit {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range inputs {
			nextA, obsA, traceA, errA := a.Sys.Apply(n.ca, in)
			nextB, obsB, traceB, errB := b.Sys.Apply(n.cb, in)
			if errA != nil || errB != nil {
				continue
			}
			if hitsAvoid(avoid, traceA) || hitsAvoid(avoid, traceB) {
				continue
			}
			path := append(append([]cfsm.Input(nil), n.path...), in)
			if obsA != obsB {
				if !(silentObs(obsA) && silentObs(obsB)) {
					return path, true, false
				}
				// A silence-only difference: no observer sees it, but the
				// runs have diverged globally. Keep exploring through it —
				// the divergence may surface as an event difference later.
				globalOnly = true
			}
			k := key(nextA, nextB)
			if seen[k] {
				continue
			}
			seen[k] = true
			frontier = append(frontier, node{ca: nextA, cb: nextB, path: path})
		}
	}
	return nil, false, globalOnly
}
