package testgen

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/paper"
)

func TestVerificationSuiteShape(t *testing.T) {
	sys := paper.MustFigure1()
	suite, undetectable := VerificationSuite(sys)
	if len(undetectable) != 0 {
		t.Fatalf("undetectable = %v", undetectable)
	}
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	// The suite should be much smaller than one test per mutant thanks to
	// test reuse.
	if len(suite) >= len(fault.Enumerate(sys)) {
		t.Errorf("no test reuse: %d cases for %d mutants", len(suite), len(fault.Enumerate(sys)))
	}
	for _, tc := range suite {
		if len(tc.Inputs) == 0 || !tc.Inputs[0].IsReset() {
			t.Fatalf("case %s does not start with reset", tc.Name)
		}
	}
	if SuiteInputs(suite) <= len(suite) {
		t.Fatal("SuiteInputs must count more than one input per case")
	}
}

// TestVerificationSuiteDetectsEverything: every single-transition mutant of
// the Figure 1 system that is distinguishable from the specification must
// produce a symptom under the verification suite — the property the
// transition tour lacks (the tour misses 9 pure transfer faults).
func TestVerificationSuiteDetectsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full mutant detection check is slow")
	}
	sys := paper.MustFigure1()
	suite, undetectable := VerificationSuite(sys)
	skip := make(map[string]bool, len(undetectable))
	for _, f := range undetectable {
		if !SystemsEquivalent(sys, mustApply(t, sys, f)) {
			t.Errorf("mutant %s declared undetectable but is distinguishable", f.Describe(sys))
		}
		skip[f.Describe(sys)] = true
	}
	expected := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		obs, err := sys.Run(tc)
		if err != nil {
			t.Fatalf("run %s: %v", tc.Name, err)
		}
		expected[i] = obs
	}
	for _, m := range fault.Mutants(sys) {
		if skip[m.Fault.Describe(sys)] {
			continue
		}
		detected := false
		for i, tc := range suite {
			obs, err := m.System.Run(tc)
			if err != nil {
				t.Fatalf("run %s on mutant: %v", tc.Name, err)
			}
			if !cfsm.ObsEqual(obs, expected[i]) {
				detected = true
				break
			}
		}
		if !detected {
			t.Errorf("verification suite missed mutant %s", m.Fault.Describe(sys))
		}
	}
}

func mustApply(t *testing.T, sys *cfsm.System, f fault.Fault) *cfsm.System {
	t.Helper()
	m, err := f.Apply(sys)
	if err != nil {
		t.Fatalf("apply %v: %v", f, err)
	}
	return m
}

func TestVerificationSuiteUndetectable(t *testing.T) {
	// A machine with two equivalent sink states: the transfer fault of t1
	// between them is undetectable.
	a, err := cfsm.NewMachine("A", "s0", []cfsm.State{"s0", "s1", "s2"}, []cfsm.Transition{
		{Name: "t1", From: "s0", Input: "x", Output: "go", To: "s1", Dest: cfsm.DestEnv},
		{Name: "t2", From: "s1", Input: "x", Output: "halt", To: "s1", Dest: cfsm.DestEnv},
		{Name: "t3", From: "s2", Input: "x", Output: "halt", To: "s2", Dest: cfsm.DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	sys, err := cfsm.NewSystem(a)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	_, undetectable := VerificationSuite(sys)
	found := false
	for _, f := range undetectable {
		if f.Ref.Name == "t1" && f.Kind == fault.KindTransfer && f.To == "s2" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected t1→s2 to be undetectable, got %v", undetectable)
	}
}
