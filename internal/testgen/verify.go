package testgen

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/fault"
)

// VerificationSuite generates a fault-model-complete test suite: a set of
// reset-prefixed test cases that detects every *detectable* single-transition
// fault of the specification. It is the CFSM counterpart of the W-method
// suites with "strong diagnostic power" that the paper's concluding
// discussion contrasts with: instead of verifying output and ending state of
// each transition in isolation (which can miss internal output faults whose
// receiver happens to be in a non-receiving state), it walks the fault model
// itself — for every enumerated single-transition mutant it ensures some
// test case distinguishes the mutant from the specification, synthesizing a
// shortest distinguishing sequence when the tests collected so far do not.
//
// Mutants that no input sequence can distinguish from the specification are
// returned in undetectable; they are outside the reach of any testing
// method.
//
// Compared with the transition tour, a VerificationSuite is larger but
// guarantees detection; experiment E5 uses both to show how the initial
// suite's power affects diagnosis coverage.
func VerificationSuite(sys *cfsm.System) (suite []cfsm.TestCase, undetectable []fault.Fault) {
	// Cache the specification's expected outputs for collected tests.
	var expected [][]cfsm.Observation

	covers := func(mutant *cfsm.System) bool {
		for i, tc := range suite {
			obs, err := mutant.Run(tc)
			if err != nil {
				continue
			}
			if !cfsm.ObsEqual(obs, expected[i]) {
				return true
			}
		}
		return false
	}

	for _, m := range fault.Mutants(sys) {
		if covers(m.System) {
			continue
		}
		seq, ok := Distinguish(
			Variant{Sys: sys, Cfg: sys.InitialConfig()},
			Variant{Sys: m.System, Cfg: m.System.InitialConfig()},
			nil,
		)
		if !ok {
			undetectable = append(undetectable, m.Fault)
			continue
		}
		tc := cfsm.TestCase{
			Name:   fmt.Sprintf("verify%d-%s", len(suite)+1, m.Fault.Ref.Name),
			Inputs: append([]cfsm.Input{cfsm.Reset()}, seq...),
		}
		obs, err := sys.Run(tc)
		if err != nil {
			// Cannot happen for a validated system; skip defensively.
			continue
		}
		suite = append(suite, tc)
		expected = append(expected, obs)
	}
	return suite, undetectable
}

// SuiteInputs counts the total inputs of a suite, the cost measure of the
// E6 experiments.
func SuiteInputs(suite []cfsm.TestCase) int {
	n := 0
	for _, tc := range suite {
		n += len(tc.Inputs)
	}
	return n
}
