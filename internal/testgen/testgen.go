// Package testgen generates test inputs for CFSM systems: transfer sequences
// that steer the system into a target state, distinguishing sequences that
// separate behavioural hypotheses, and transition-tour test suites that cover
// every transition. The transfer and distinguishing searches accept an avoid
// set of transitions that must not be exercised — the constraint Step 6 of
// the diagnosis algorithm places on additional diagnostic tests ("they do not
// involve any candidate transition").
package testgen

import (
	"cfsmdiag/internal/cfsm"
)

// RefSet is a set of transition references used as an avoid set.
type RefSet map[cfsm.Ref]bool

// NewRefSet builds a set from the given references.
func NewRefSet(refs ...cfsm.Ref) RefSet {
	s := make(RefSet, len(refs))
	for _, r := range refs {
		s[r] = true
	}
	return s
}

// Clone returns a copy of the set.
func (s RefSet) Clone() RefSet {
	c := make(RefSet, len(s))
	for r := range s {
		c[r] = true
	}
	return c
}

// Without returns a copy of the set with the given reference removed.
func (s RefSet) Without(r cfsm.Ref) RefSet {
	c := s.Clone()
	delete(c, r)
	return c
}

// hitsAvoid reports whether any executed transition is in the avoid set.
func hitsAvoid(avoid RefSet, trace []cfsm.Executed) bool {
	if len(avoid) == 0 {
		return false
	}
	for _, e := range trace {
		if avoid[e.Ref()] {
			return true
		}
	}
	return false
}

// AllInputs returns every applicable external stimulus of the system — each
// symbol of each machine's input alphabet applied at that machine's port —
// in deterministic (port, symbol) order. The reset input is not included.
func AllInputs(sys *cfsm.System) []cfsm.Input {
	var out []cfsm.Input
	for port := 0; port < sys.N(); port++ {
		for _, sym := range sys.Inputs(port) {
			out = append(out, cfsm.Input{Port: port, Sym: sym})
		}
	}
	return out
}

// searchLimit bounds the number of configurations (or configuration pairs)
// a breadth-first search may visit before giving up. The global state space
// of an N-machine system is exponential in N; the limit turns a pathological
// search into an explicit "not found" instead of an unbounded walk.
const searchLimit = 200_000
