package testgen

import (
	"cfsmdiag/internal/cfsm"
)

// TransferResult is a successful transfer search: the input sequence (not
// including the leading reset) and the global configuration it reaches.
type TransferResult struct {
	Inputs []cfsm.Input
	Config cfsm.Config
}

// TransferToState finds a shortest input sequence that takes the system from
// its initial configuration to any configuration in which the given machine
// is in the given state, without exercising any avoided transition. The
// search is breadth-first over global configurations, so the result is
// length-minimal among avoid-respecting sequences.
//
// This implements the "transfer sequence" of Step 6: "an input sequence …
// required to take the machine from its initial state to the starting state
// of T_k", generalized to the global system so that the side effects on the
// other machines are tracked too.
func TransferToState(sys *cfsm.System, machine int, target cfsm.State, avoid RefSet) (TransferResult, bool) {
	goal := func(cfg cfsm.Config) bool { return cfg[machine] == target }
	return TransferToConfig(sys, goal, avoid)
}

// TransferToConfig finds a shortest avoid-respecting input sequence from the
// initial configuration to any configuration satisfying goal.
func TransferToConfig(sys *cfsm.System, goal func(cfsm.Config) bool, avoid RefSet) (TransferResult, bool) {
	start := sys.InitialConfig()
	if goal(start) {
		return TransferResult{Config: start}, true
	}
	type node struct {
		cfg  cfsm.Config
		path []cfsm.Input
	}
	inputs := AllInputs(sys)
	seen := map[string]bool{start.Key(): true}
	frontier := []node{{cfg: start}}
	for len(frontier) > 0 && len(seen) < searchLimit {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range inputs {
			next, obs, trace, err := sys.Apply(n.cfg, in)
			if err != nil {
				continue
			}
			if obs.Sym == cfsm.Epsilon && len(trace) == 0 {
				continue // undefined input: no progress
			}
			if hitsAvoid(avoid, trace) {
				continue
			}
			key := next.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			path := append(append([]cfsm.Input(nil), n.path...), in)
			if goal(next) {
				return TransferResult{Inputs: path, Config: next}, true
			}
			frontier = append(frontier, node{cfg: next, path: path})
		}
	}
	return TransferResult{}, false
}

// ReachableConfigs returns every global configuration reachable from the
// initial configuration (under no avoidance), keyed by Config.Key().
func ReachableConfigs(sys *cfsm.System) map[string]cfsm.Config {
	start := sys.InitialConfig()
	seen := map[string]cfsm.Config{start.Key(): start}
	frontier := []cfsm.Config{start}
	inputs := AllInputs(sys)
	for len(frontier) > 0 && len(seen) < searchLimit {
		cfg := frontier[0]
		frontier = frontier[1:]
		for _, in := range inputs {
			next, _, _, err := sys.Apply(cfg, in)
			if err != nil {
				continue
			}
			if _, ok := seen[next.Key()]; !ok {
				seen[next.Key()] = next
				frontier = append(frontier, next)
			}
		}
	}
	return seen
}
