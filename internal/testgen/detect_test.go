package testgen

import (
	"testing"

	"cfsmdiag/internal/paper"
)

func TestDetectionPaperSuite(t *testing.T) {
	spec := paper.MustFigure1()
	report, err := Detection(spec, paper.TestSuite(), false, false)
	if err != nil {
		t.Fatalf("Detection: %v", err)
	}
	if report.Faults != 145 {
		t.Fatalf("fault space = %d, want 145", report.Faults)
	}
	// Measured in the E5 sweep: the paper's two test cases detect 45 of the
	// 145 mutants.
	if len(report.Detected) != 45 {
		t.Errorf("detected = %d, want 45", len(report.Detected))
	}
	if len(report.Missed) != 100 {
		t.Errorf("missed = %d, want 100", len(report.Missed))
	}
	// The paper's own fault must be detected by tc1 (index 0).
	f := paper.TestSuite()
	_ = f
	key := `M3.t"4 transfers to s0 instead of s1`
	if idx, ok := report.Detected[key]; !ok || idx != 0 {
		t.Errorf("paper fault detection = %d/%v, want case 0", idx, ok)
	}
	if got := report.DetectionRate(); got < 0.3 || got > 0.32 {
		t.Errorf("DetectionRate = %v, want ≈ 45/145", got)
	}
}

func TestDetectionVerificationSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full detection evaluation is slow")
	}
	spec := paper.MustFigure1()
	suite, _ := VerificationSuite(spec)
	report, err := Detection(spec, suite, true, true)
	if err != nil {
		t.Fatalf("Detection: %v", err)
	}
	if len(report.Missed) != 0 {
		t.Errorf("verification suite missed %d detectable faults: %v",
			len(report.Missed), report.Missed)
	}
	if report.DetectionRate() != 1.0 {
		t.Errorf("DetectionRate = %v, want 1.0", report.DetectionRate())
	}
}

func TestDetectionRateNoFaults(t *testing.T) {
	r := DetectionReport{}
	if r.DetectionRate() != 1.0 {
		t.Errorf("empty report rate = %v, want 1.0", r.DetectionRate())
	}
}
