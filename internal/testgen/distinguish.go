package testgen

import (
	"cfsmdiag/internal/cfsm"
)

// Variant is one behavioural hypothesis: a system (the specification, or the
// specification rewired with a hypothesized fault) together with its current
// global configuration. Step 6 reduces both the "limited characterization
// set" W_k (transfer-fault hypotheses — same system text, different states)
// and the "distinguishing set" U_k (output-fault hypotheses — different
// system texts) to the problem of telling variants apart by their observable
// responses; this package solves the general problem.
type Variant struct {
	Sys *cfsm.System
	Cfg cfsm.Config
}

// Distinguish finds a shortest input sequence whose observation sequences
// under the two variants differ, exercising no avoided transition in either
// variant's prediction. It is the CFSM generalization of the classical
// distinguishing-sequence search: breadth-first over pairs of global
// configurations, with the twist that the two sides may run different
// (mutated) transition relations.
//
// ok is false when the variants are equivalent under the avoidance
// constraint (or the search exceeds its exploration limit).
func Distinguish(a, b Variant, avoid RefSet) (seq []cfsm.Input, ok bool) {
	return DistinguishOver(a, b, AllInputs(a.Sys), avoid)
}

// DistinguishOver is Distinguish with a restricted input universe: only the
// given inputs may appear in the sequence. The restriction supports the
// unsynchronized-ports extension, where only single-port sequences behave
// deterministically and multi-port probes would race.
func DistinguishOver(a, b Variant, inputs []cfsm.Input, avoid RefSet) (seq []cfsm.Input, ok bool) {
	if a.Sys.N() != b.Sys.N() {
		return nil, false
	}
	type node struct {
		ca, cb cfsm.Config
		path   []cfsm.Input
	}
	key := func(ca, cb cfsm.Config) string { return ca.Key() + "||" + cb.Key() }
	seen := map[string]bool{key(a.Cfg, b.Cfg): true}
	frontier := []node{{ca: a.Cfg, cb: b.Cfg}}
	for len(frontier) > 0 && len(seen) < searchLimit {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range inputs {
			nextA, obsA, traceA, errA := a.Sys.Apply(n.ca, in)
			nextB, obsB, traceB, errB := b.Sys.Apply(n.cb, in)
			if errA != nil || errB != nil {
				continue
			}
			if hitsAvoid(avoid, traceA) || hitsAvoid(avoid, traceB) {
				continue
			}
			path := append(append([]cfsm.Input(nil), n.path...), in)
			if obsA != obsB {
				return path, true
			}
			k := key(nextA, nextB)
			if seen[k] {
				continue
			}
			seen[k] = true
			frontier = append(frontier, node{ca: nextA, cb: nextB, path: path})
		}
	}
	return nil, false
}

// EquivalentVariants reports whether two variants are observationally
// equivalent: no input sequence separates them.
func EquivalentVariants(a, b Variant) bool {
	_, distinguishable := Distinguish(a, b, nil)
	return !distinguishable
}

// SystemsEquivalent reports whether two systems started in their initial
// configurations are observationally equivalent. It is used by the fault
// sweep to identify mutants that are undetectable in principle.
func SystemsEquivalent(a, b *cfsm.System) bool {
	return EquivalentVariants(
		Variant{Sys: a, Cfg: a.InitialConfig()},
		Variant{Sys: b, Cfg: b.InitialConfig()},
	)
}
