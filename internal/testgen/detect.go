package testgen

import (
	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/fault"
)

// DetectionReport records how well an initial test suite supports diagnosis
// of a specification: which single-transition faults it detects (diagnosis
// can only start once a symptom appears), which detectable faults it misses,
// and which faults are undetectable in principle (their mutants are
// observationally equivalent to the specification). Tools use it to judge a
// regression suite before relying on the diagnostic algorithm.
type DetectionReport struct {
	Spec  *cfsm.System
	Suite []cfsm.TestCase
	// Detected maps each detected fault to the index of the first test case
	// that reveals it.
	Detected map[string]int
	// Missed lists detectable faults the suite does not reveal.
	Missed []fault.Fault
	// Undetectable lists faults whose mutants are equivalent to the spec.
	Undetectable []fault.Fault
	// Faults is the enumerated fault space, for totals.
	Faults int
}

// DetectionRate returns the fraction of detectable faults the suite detects
// (1.0 when there are none).
func (r DetectionReport) DetectionRate() float64 {
	detectable := r.Faults - len(r.Undetectable)
	if detectable == 0 {
		return 1.0
	}
	return float64(len(r.Detected)) / float64(detectable)
}

// Detection evaluates the suite against the complete single-transition fault
// model. includeAddress adds the addressing-fault extension to the space.
// checkEquivalence controls whether missed faults are classified as missed
// versus undetectable (the equivalence check costs a pairwise search per
// missed fault).
func Detection(spec *cfsm.System, suite []cfsm.TestCase, includeAddress, checkEquivalence bool) (DetectionReport, error) {
	report := DetectionReport{
		Spec:     spec,
		Suite:    suite,
		Detected: make(map[string]int),
	}
	expected := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		obs, err := spec.Run(tc)
		if err != nil {
			return report, err
		}
		expected[i] = obs
	}

	mutants := fault.Mutants(spec)
	if includeAddress {
		mutants = append(mutants, fault.AddressMutants(spec)...)
	}
	report.Faults = len(mutants)
	for _, m := range mutants {
		caseIdx := -1
		for i, tc := range suite {
			obs, err := m.System.Run(tc)
			if err != nil {
				return report, err
			}
			if !cfsm.ObsEqual(obs, expected[i]) {
				caseIdx = i
				break
			}
		}
		if caseIdx >= 0 {
			report.Detected[m.Fault.Describe(spec)] = caseIdx
			continue
		}
		if checkEquivalence && SystemsEquivalent(spec, m.System) {
			report.Undetectable = append(report.Undetectable, m.Fault)
			continue
		}
		report.Missed = append(report.Missed, m.Fault)
	}
	return report, nil
}
