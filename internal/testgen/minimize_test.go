package testgen

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/paper"
)

func TestMinimizeSuiteKeepsDetectionPower(t *testing.T) {
	if testing.Short() {
		t.Skip("suite minimization evaluation is slow")
	}
	spec := paper.MustFigure1()
	suite, _ := VerificationSuite(spec)
	minimized, err := MinimizeSuite(spec, suite)
	if err != nil {
		t.Fatalf("MinimizeSuite: %v", err)
	}
	if len(minimized) == 0 || len(minimized) > len(suite) {
		t.Fatalf("minimized = %d of %d cases", len(minimized), len(suite))
	}
	t.Logf("verification suite minimized: %d -> %d cases (%d -> %d inputs)",
		len(suite), len(minimized), SuiteInputs(suite), SuiteInputs(minimized))

	// Detection rate must be preserved exactly.
	before, err := Detection(spec, suite, false, false)
	if err != nil {
		t.Fatalf("Detection(before): %v", err)
	}
	after, err := Detection(spec, minimized, false, false)
	if err != nil {
		t.Fatalf("Detection(after): %v", err)
	}
	if len(after.Detected) != len(before.Detected) {
		t.Fatalf("detection power changed: %d -> %d", len(before.Detected), len(after.Detected))
	}
}

func TestMinimizeSuiteDropsRedundancy(t *testing.T) {
	spec := paper.MustFigure1()
	// Duplicate the paper suite: the copies are pure redundancy.
	suite := append(paper.TestSuite(), paper.TestSuite()...)
	minimized, err := MinimizeSuite(spec, suite)
	if err != nil {
		t.Fatalf("MinimizeSuite: %v", err)
	}
	if len(minimized) >= len(suite) {
		t.Fatalf("minimization dropped nothing: %d of %d", len(minimized), len(suite))
	}
}

func TestMinimizeSuiteNoDetection(t *testing.T) {
	spec := paper.MustFigure1()
	// A suite that detects nothing minimizes to the empty suite.
	suite := []cfsm.TestCase{{Name: "noop", Inputs: []cfsm.Input{cfsm.Reset()}}}
	minimized, err := MinimizeSuite(spec, suite)
	if err != nil {
		t.Fatalf("MinimizeSuite: %v", err)
	}
	if len(minimized) != 0 {
		t.Fatalf("minimized = %v, want empty", minimized)
	}
}
