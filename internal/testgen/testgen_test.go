package testgen

import (
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/paper"
)

func TestRefSet(t *testing.T) {
	r1 := cfsm.Ref{Machine: 0, Name: "t1"}
	r2 := cfsm.Ref{Machine: 1, Name: "t2"}
	s := NewRefSet(r1, r2)
	if len(s) != 2 || !s[r1] || !s[r2] {
		t.Fatalf("NewRefSet = %v", s)
	}
	c := s.Without(r1)
	if len(c) != 1 || c[r1] || !c[r2] {
		t.Fatalf("Without = %v", c)
	}
	if len(s) != 2 {
		t.Fatal("Without mutated the receiver")
	}
	d := s.Clone()
	delete(d, r2)
	if len(s) != 2 {
		t.Fatal("Clone is shallow")
	}
}

func TestAllInputs(t *testing.T) {
	sys := paper.MustFigure1()
	ins := AllInputs(sys)
	// M1 defines inputs {a,b,c,d,e,f}, M2 {c',d',o,q,r,s,t}, M3 {c',d',u,v,x,y,z}.
	if want := 6 + 7 + 7; len(ins) != want {
		t.Fatalf("AllInputs returned %d, want %d: %v", len(ins), want, ins)
	}
	// Deterministic order: all port-0 inputs first, sorted.
	if ins[0] != (cfsm.Input{Port: 0, Sym: "a"}) {
		t.Fatalf("first input = %v", ins[0])
	}
	for _, in := range ins {
		if in.IsReset() {
			t.Fatal("AllInputs must not include the reset")
		}
	}
}

func TestTransferToState(t *testing.T) {
	sys := paper.MustFigure1()

	t.Run("paper transfer to start of t7", func(t *testing.T) {
		// Step 6 of the paper: "A possible transfer sequence which will take
		// the machine M1 to the starting state s2 of t7 is R, c^1."
		res, ok := TransferToState(sys, paper.M1, "s2", nil)
		if !ok {
			t.Fatal("no transfer sequence found")
		}
		if got := cfsm.FormatInputs(res.Inputs); got != "c^1" {
			t.Fatalf("transfer sequence = %q, want c^1", got)
		}
		if res.Config[paper.M1] != "s2" {
			t.Fatalf("config = %v", res.Config)
		}
	})

	t.Run("paper transfer to start of t\"4", func(t *testing.T) {
		// "A possible transfer sequence which will take the machine M3 to
		// the starting state s1 of t\"4 is R, c'^3."
		res, ok := TransferToState(sys, paper.M3, "s1", nil)
		if !ok {
			t.Fatal("no transfer sequence found")
		}
		if got := cfsm.FormatInputs(res.Inputs); got != "c'^3" {
			t.Fatalf("transfer sequence = %q, want c'^3", got)
		}
	})

	t.Run("already satisfied", func(t *testing.T) {
		res, ok := TransferToState(sys, paper.M1, "s0", nil)
		if !ok || len(res.Inputs) != 0 {
			t.Fatalf("res = %v ok %v, want empty sequence", res, ok)
		}
	})

	t.Run("avoid forces detour", func(t *testing.T) {
		// Avoiding t2 (s0 -c-> s2) forces the longer route through s1.
		avoid := NewRefSet(cfsm.Ref{Machine: paper.M1, Name: "t2"})
		res, ok := TransferToState(sys, paper.M1, "s2", avoid)
		if !ok {
			t.Fatal("no transfer sequence found")
		}
		if len(res.Inputs) < 2 {
			t.Fatalf("transfer sequence %v should detour around t2", res.Inputs)
		}
		// Verify the sequence truly avoids t2 and lands in s2.
		cfg := sys.InitialConfig()
		for _, in := range res.Inputs {
			next, _, trace, err := sys.Apply(cfg, in)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if hitsAvoid(avoid, trace) {
				t.Fatalf("sequence executed avoided transition: %v", trace)
			}
			cfg = next
		}
		if cfg[paper.M1] != "s2" {
			t.Fatalf("final config %v", cfg)
		}
	})

	t.Run("unreachable target", func(t *testing.T) {
		// Avoid every transition: only the initial configuration is reachable.
		avoid := NewRefSet(sys.Refs()...)
		if _, ok := TransferToState(sys, paper.M1, "s2", avoid); ok {
			t.Fatal("target should be unreachable when everything is avoided")
		}
	})
}

func TestReachableConfigs(t *testing.T) {
	sys := paper.MustFigure1()
	configs := ReachableConfigs(sys)
	if len(configs) == 0 || len(configs) > 27 {
		t.Fatalf("ReachableConfigs returned %d configurations", len(configs))
	}
	if _, ok := configs[sys.InitialConfig().Key()]; !ok {
		t.Fatal("initial configuration missing")
	}
}

func TestDistinguishStates(t *testing.T) {
	spec := paper.MustFigure1()

	t.Run("distinguish M3 s0 from s1", func(t *testing.T) {
		// The paper distinguishes M3's s0 and s1 (after the suspect t"4)
		// with input v^3: in s1 it yields b^3, in s0 it is undefined (ε^3).
		a := Variant{Sys: spec, Cfg: cfsm.Config{"s0", "s0", "s1"}}
		b := Variant{Sys: spec, Cfg: cfsm.Config{"s0", "s0", "s0"}}
		seq, ok := Distinguish(a, b, nil)
		if !ok {
			t.Fatal("s1 and s0 of M3 must be distinguishable")
		}
		// Verify the sequence separates the variants.
		oa := runFrom(t, spec, a.Cfg, seq)
		ob := runFrom(t, spec, b.Cfg, seq)
		if cfsm.FormatObs(oa) == cfsm.FormatObs(ob) {
			t.Fatalf("sequence %v does not distinguish", cfsm.FormatInputs(seq))
		}
	})

	t.Run("identical variants are equivalent", func(t *testing.T) {
		v := Variant{Sys: spec, Cfg: spec.InitialConfig()}
		if _, ok := Distinguish(v, v, nil); ok {
			t.Fatal("identical variants must not be distinguishable")
		}
		if !EquivalentVariants(v, v) {
			t.Fatal("EquivalentVariants(v,v) = false")
		}
	})

	t.Run("mutated system distinguished from spec", func(t *testing.T) {
		iut, err := paper.FaultyImplementation()
		if err != nil {
			t.Fatalf("FaultyImplementation: %v", err)
		}
		if SystemsEquivalent(spec, iut) {
			t.Fatal("the paper's faulty IUT must be distinguishable from the spec")
		}
	})

	t.Run("mismatched machine count", func(t *testing.T) {
		a := Variant{Sys: spec, Cfg: spec.InitialConfig()}
		small := twoMachineSystem(t)
		b := Variant{Sys: small, Cfg: small.InitialConfig()}
		if _, ok := Distinguish(a, b, nil); ok {
			t.Fatal("mismatched systems must not be comparable")
		}
	})
}

func runFrom(t *testing.T, sys *cfsm.System, cfg cfsm.Config, ins []cfsm.Input) []cfsm.Observation {
	t.Helper()
	var obs []cfsm.Observation
	for _, in := range ins {
		next, o, _, err := sys.Apply(cfg, in)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		obs = append(obs, o)
		cfg = next
	}
	return obs
}

func twoMachineSystem(t *testing.T) *cfsm.System {
	t.Helper()
	a, err := cfsm.NewMachine("A", "s0", []cfsm.State{"s0"}, []cfsm.Transition{
		{Name: "a1", From: "s0", Input: "x", Output: "y", To: "s0", Dest: cfsm.DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	b, err := cfsm.NewMachine("B", "q0", []cfsm.State{"q0"}, []cfsm.Transition{
		{Name: "b1", From: "q0", Input: "m", Output: "z", To: "q0", Dest: cfsm.DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	sys, err := cfsm.NewSystem(a, b)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestTourCoversEverything(t *testing.T) {
	sys := paper.MustFigure1()
	suite, uncovered := Tour(sys, 0)
	if len(uncovered) != 0 {
		t.Fatalf("uncovered transitions: %v", uncovered)
	}
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	// Replay the suite and verify every transition executes.
	covered := make(RefSet)
	for _, tc := range suite {
		if !tc.Inputs[0].IsReset() {
			t.Fatalf("test case %s does not start with reset", tc.Name)
		}
		_, steps, err := sys.RunTrace(tc)
		if err != nil {
			t.Fatalf("RunTrace: %v", err)
		}
		for _, ex := range steps {
			for _, e := range ex {
				covered[e.Ref()] = true
			}
		}
	}
	if len(covered) != sys.NumTransitions() {
		t.Fatalf("suite covers %d of %d transitions", len(covered), sys.NumTransitions())
	}
}

func TestTourMaxLen(t *testing.T) {
	sys := paper.MustFigure1()
	suite, uncovered := Tour(sys, 6)
	if len(uncovered) != 0 {
		t.Fatalf("uncovered transitions: %v", uncovered)
	}
	for _, tc := range suite {
		if len(tc.Inputs) > 6 {
			t.Fatalf("test case %s has %d inputs, budget 6", tc.Name, len(tc.Inputs))
		}
	}
	if len(suite) < 2 {
		t.Fatalf("expected the budget to split the tour, got %d case(s)", len(suite))
	}
}

func TestTourUnreachable(t *testing.T) {
	// A machine with an island state: t2 is unreachable.
	a, err := cfsm.NewMachine("A", "s0", []cfsm.State{"s0", "s1"}, []cfsm.Transition{
		{Name: "t1", From: "s0", Input: "x", Output: "y", To: "s0", Dest: cfsm.DestEnv},
		{Name: "t2", From: "s1", Input: "x", Output: "y", To: "s1", Dest: cfsm.DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	sys, err := cfsm.NewSystem(a)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	suite, uncovered := Tour(sys, 0)
	if len(uncovered) != 1 || uncovered[0].Name != "t2" {
		t.Fatalf("uncovered = %v, want [t2]", uncovered)
	}
	if len(suite) != 1 {
		t.Fatalf("suite = %v", suite)
	}
}
