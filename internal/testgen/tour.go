package testgen

import (
	"fmt"

	"cfsmdiag/internal/cfsm"
)

// Tour generates a transition-tour test suite: a set of test cases, each
// beginning with the reset input, that together execute every transition of
// every machine at least once. It stands in for the external test-selection
// methods the paper assumes for the initial test suite TS ([13] in the
// paper's references) and is used by the fault-sweep and cost experiments.
//
// The construction is greedy: from the current configuration, a breadth-
// first search finds a shortest input sequence whose last step executes at
// least one still-uncovered transition; the sequence is appended to the
// current test case and everything it executed is marked covered. When no
// uncovered transition is reachable from the current configuration the test
// case is closed and a fresh one is started from the initial configuration.
// Transitions unreachable from the initial configuration are returned in
// uncovered.
//
// maxLen bounds the number of inputs per test case (0 means no bound); long
// tours are split so that diagnosis works with realistically sized test
// cases.
func Tour(sys *cfsm.System, maxLen int) (suite []cfsm.TestCase, uncovered []cfsm.Ref) {
	covered := make(RefSet)
	total := sys.NumTransitions()

	current := cfsm.TestCase{
		Name:   fmt.Sprintf("tour%d", len(suite)+1),
		Inputs: []cfsm.Input{cfsm.Reset()},
	}
	cfg := sys.InitialConfig()

	closeCase := func() {
		if len(current.Inputs) > 1 {
			suite = append(suite, current)
		}
		current = cfsm.TestCase{
			Name:   fmt.Sprintf("tour%d", len(suite)+1),
			Inputs: []cfsm.Input{cfsm.Reset()},
		}
		cfg = sys.InitialConfig()
	}

	for len(covered) < total {
		seq, end, ok := nextUncovered(sys, cfg, covered)
		if !ok {
			// Nothing new reachable from here. If we are mid-case, restart
			// from the initial configuration; if we are already there, the
			// remaining transitions are unreachable.
			if len(current.Inputs) > 1 {
				closeCase()
				continue
			}
			break
		}
		if maxLen > 0 && len(current.Inputs)+len(seq) > maxLen && len(current.Inputs) > 1 {
			closeCase()
			continue
		}
		// Mark everything along the sequence as covered.
		c := cfg
		for _, in := range seq {
			next, _, trace, err := sys.Apply(c, in)
			if err != nil {
				break
			}
			for _, e := range trace {
				covered[e.Ref()] = true
			}
			c = next
		}
		current.Inputs = append(current.Inputs, seq...)
		cfg = end
	}
	if len(current.Inputs) > 1 {
		suite = append(suite, current)
	}
	for _, r := range sys.Refs() {
		if !covered[r] {
			uncovered = append(uncovered, r)
		}
	}
	return suite, uncovered
}

// nextUncovered finds a shortest input sequence from cfg whose final step
// executes at least one uncovered transition.
func nextUncovered(sys *cfsm.System, cfg cfsm.Config, covered RefSet) (seq []cfsm.Input, end cfsm.Config, ok bool) {
	type node struct {
		cfg  cfsm.Config
		path []cfsm.Input
	}
	inputs := AllInputs(sys)
	seen := map[string]bool{cfg.Key(): true}
	frontier := []node{{cfg: cfg}}
	for len(frontier) > 0 && len(seen) < searchLimit {
		n := frontier[0]
		frontier = frontier[1:]
		for _, in := range inputs {
			next, _, trace, err := sys.Apply(n.cfg, in)
			if err != nil || len(trace) == 0 {
				continue
			}
			path := append(append([]cfsm.Input(nil), n.path...), in)
			for _, e := range trace {
				if !covered[e.Ref()] {
					return path, next, true
				}
			}
			key := next.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			frontier = append(frontier, node{cfg: next, path: path})
		}
	}
	return nil, nil, false
}
