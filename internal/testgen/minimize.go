package testgen

import (
	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/fault"
)

// MinimizeSuite returns a subset of the suite with the same single-
// transition fault-detection power, computed by greedy set cover over the
// detection matrix (which test case detects which mutant). Test cases that
// detect no mutant the rest does not are dropped; ties are broken toward
// earlier, then shorter, test cases, so hand-written regression cases tend
// to survive generated ones.
//
// The result detects exactly the mutants the input suite detects — no more,
// no less — so minimizing a fault-model-complete verification suite keeps
// it complete.
func MinimizeSuite(spec *cfsm.System, suite []cfsm.TestCase) ([]cfsm.TestCase, error) {
	expected := make([][]cfsm.Observation, len(suite))
	for i, tc := range suite {
		obs, err := spec.Run(tc)
		if err != nil {
			return nil, err
		}
		expected[i] = obs
	}

	// detects[i] lists the mutant indices test case i detects.
	mutants := fault.Mutants(spec)
	detects := make([][]int, len(suite))
	detectable := make(map[int]bool)
	for mi, m := range mutants {
		for i, tc := range suite {
			obs, err := m.System.Run(tc)
			if err != nil {
				return nil, err
			}
			if !cfsm.ObsEqual(obs, expected[i]) {
				detects[i] = append(detects[i], mi)
				detectable[mi] = true
			}
		}
	}

	covered := make(map[int]bool, len(detectable))
	var picked []int
	for len(covered) < len(detectable) {
		best, bestGain := -1, 0
		for i := range suite {
			gain := 0
			for _, mi := range detects[i] {
				if !covered[mi] {
					gain++
				}
			}
			better := gain > bestGain ||
				(gain == bestGain && gain > 0 &&
					len(suite[i].Inputs) < len(suite[best].Inputs))
			if better {
				best, bestGain = i, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break // cannot happen: every detectable mutant has a detector
		}
		picked = append(picked, best)
		for _, mi := range detects[best] {
			covered[mi] = true
		}
	}

	// Preserve original suite order.
	inPicked := make(map[int]bool, len(picked))
	for _, i := range picked {
		inPicked[i] = true
	}
	var out []cfsm.TestCase
	for i, tc := range suite {
		if inPicked[i] {
			out = append(out, tc)
		}
	}
	return out, nil
}
