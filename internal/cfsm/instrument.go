package cfsm

import (
	"sync/atomic"

	"cfsmdiag/internal/obs"
)

// SimMetrics holds the simulator's counters. The fields are nil-safe obs
// handles, so a partially populated struct is fine.
type SimMetrics struct {
	// Steps counts every input processed by System.Apply or Runner.Step,
	// resets included.
	Steps *obs.Counter
	// Resets counts system resets (explicit Runner.Reset calls and R inputs).
	Resets *obs.Counter
}

// NewSimMetrics resolves the simulator's metric families on a registry. On a
// nil registry every handle is nil (a no-op).
func NewSimMetrics(r *obs.Registry) *SimMetrics {
	return &SimMetrics{
		Steps:  r.Counter("cfsmdiag_sim_steps_total", "Simulator inputs processed (resets included)."),
		Resets: r.Counter("cfsmdiag_sim_resets_total", "Simulator resets (explicit resets and R inputs)."),
	}
}

// simMetrics is the process-wide instrumentation hook. It is disabled (nil)
// by default so the hot path pays one atomic load and a branch per step; see
// BenchmarkSimulation for the budget.
var simMetrics atomic.Pointer[SimMetrics]

// InstrumentSimulator installs process-wide simulator instrumentation; nil
// disables it again. Counting happens on every System.Apply and Runner.Step
// in the process, so enable it from one place (the server or CLI entry
// point), not from library code.
func InstrumentSimulator(m *SimMetrics) {
	simMetrics.Store(m)
}

// RecordSimulated adds a batch of step and reset counts to the process-wide
// simulator instrumentation. Execution engines that keep local counters
// instead of paying the per-step hook (the compiled runner) flush through
// here. No-op while instrumentation is disabled.
func RecordSimulated(steps, resets int64) {
	if m := simMetrics.Load(); m != nil {
		if steps > 0 {
			m.Steps.Add(steps)
		}
		if resets > 0 {
			m.Resets.Add(resets)
		}
	}
}

func recordStep() {
	if m := simMetrics.Load(); m != nil {
		m.Steps.Inc()
	}
}

func recordReset() {
	if m := simMetrics.Load(); m != nil {
		m.Resets.Inc()
	}
}
