package cfsm

import (
	"testing"

	"cfsmdiag/internal/obs"
)

func instrumentedSystem(t *testing.T) *System {
	t.Helper()
	m, err := NewMachine("M1", "s0", []State{"s0", "s1"}, []Transition{
		{Name: "t1", From: "s0", To: "s1", Input: "a", Output: "x", Dest: DestEnv},
		{Name: "t2", From: "s1", To: "s0", Input: "b", Output: "y", Dest: DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	sys, err := NewSystem(m)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestInstrumentSimulator(t *testing.T) {
	sys := instrumentedSystem(t)
	reg := obs.New()
	m := NewSimMetrics(reg)
	InstrumentSimulator(m)
	defer InstrumentSimulator(nil)

	tc := TestCase{Name: "t", Inputs: []Input{Reset(), {Port: 0, Sym: "a"}, {Port: 0, Sym: "b"}}}
	if _, err := sys.Run(tc); err != nil {
		t.Fatal(err)
	}
	if got := m.Steps.Value(); got != 3 {
		t.Errorf("steps = %d, want 3", got)
	}
	if got := m.Resets.Value(); got != 1 {
		t.Errorf("resets = %d, want 1", got)
	}

	// Apply counts too.
	if _, _, _, err := sys.Apply(sys.InitialConfig(), Input{Port: 0, Sym: "a"}); err != nil {
		t.Fatal(err)
	}
	if got := m.Steps.Value(); got != 4 {
		t.Errorf("steps after Apply = %d, want 4", got)
	}

	// Disabling stops counting without disturbing existing values.
	InstrumentSimulator(nil)
	if _, err := sys.Run(tc); err != nil {
		t.Fatal(err)
	}
	if got := m.Steps.Value(); got != 4 {
		t.Errorf("steps after disable = %d, want 4", got)
	}
}
