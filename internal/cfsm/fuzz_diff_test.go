// Differential fuzzing of the two simulator implementations: the
// string-keyed interpreted simulator (this package) and the dense compiled
// representation (internal/compiled) must agree on every observation and
// error for arbitrary stimulus streams applied to arbitrary mutants. The
// external test package breaks the import cycle cfsm -> compiled -> cfsm.
package cfsm_test

import (
	"fmt"
	"reflect"
	"testing"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/compiled"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/paper"
)

// FuzzRunnerParity picks a mutant of Figure 1 from the fault index, decodes
// the byte stream into a stimulus sequence (every port, every symbol of the
// system, resets, an unknown symbol and an out-of-range port), and requires
// the interpreted and compiled runners to produce identical observation
// sequences — or the identical error.
func FuzzRunnerParity(f *testing.F) {
	spec := paper.MustFigure1()
	prog, err := compiled.Compile(spec)
	if err != nil {
		f.Fatal(err)
	}
	faults := append(fault.Enumerate(spec), fault.EnumerateAddress(spec)...)
	var syms []cfsm.Symbol
	seen := map[cfsm.Symbol]bool{}
	for i := 0; i < spec.N(); i++ {
		for _, tr := range spec.Machine(i).Transitions() {
			for _, s := range []cfsm.Symbol{tr.Input, tr.Output} {
				if !seen[s] {
					seen[s] = true
					syms = append(syms, s)
				}
			}
		}
	}
	// Two extra symbol slots: reset and a symbol outside the alphabet. One
	// extra port slot: out of range.
	syms = append(syms, cfsm.ResetSymbol, "zz-unknown")

	f.Add(uint16(0), []byte{})
	f.Add(uint16(1), []byte{0, 0, 1, 1, 2, 2})
	f.Add(uint16(7), []byte{0, 1, 0, 2, 0, 3, 1, 0, 2, 0})
	f.Add(uint16(65535), []byte{3, 0}) // out-of-range port
	f.Fuzz(func(t *testing.T, fi uint16, stream []byte) {
		mutant := spec
		ov := compiled.None()
		if len(faults) > 0 && fi%11 != 0 { // sometimes exercise the spec itself
			fl := faults[int(fi)%len(faults)]
			m, err := fl.Apply(spec)
			if err != nil {
				t.Fatalf("apply enumerated fault %s: %v", fl.Describe(spec), err)
			}
			o, ok := prog.OverlayFor(fl)
			if !ok {
				t.Fatalf("no overlay for enumerated fault %s", fl.Describe(spec))
			}
			mutant, ov = m, o
		}
		inputs := make([]cfsm.Input, 0, len(stream)/2)
		for i := 0; i+1 < len(stream); i += 2 {
			inputs = append(inputs, cfsm.Input{
				Port: int(stream[i]) % (spec.N() + 1), // N = invalid port
				Sym:  syms[int(stream[i+1])%len(syms)],
			})
		}
		tc := cfsm.TestCase{Name: fmt.Sprintf("fuzz-%d", fi), Inputs: inputs}
		want, wantErr := mutant.Run(tc)
		got, gotErr := prog.RunnerFor(ov).Run(tc)
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("error diverges:\ninterpreted %v\ncompiled    %v", wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("observations diverge for %v:\ninterpreted %v\ncompiled    %v", inputs, want, got)
		}
	})
}
