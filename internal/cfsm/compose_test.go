package cfsm

import (
	"testing"
)

func TestConcat(t *testing.T) {
	a := twoMachine(t)
	b := twoMachine(t)
	combined, err := Concat(map[string]*System{"p1": a, "p2": b})
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if combined.N() != 4 {
		t.Fatalf("N = %d, want 4", combined.N())
	}
	if combined.NumTransitions() != a.NumTransitions()+b.NumTransitions() {
		t.Fatalf("transitions = %d", combined.NumTransitions())
	}
	// Machine names are prefixed and deterministic (p1 before p2).
	if got := combined.Machine(0).Name(); got != "p1.A" {
		t.Fatalf("machine 0 = %q", got)
	}
	if got := combined.Machine(2).Name(); got != "p2.A" {
		t.Fatalf("machine 2 = %q", got)
	}
	// Internal wiring of the second part is shifted: p2.A's internal
	// transition addresses machine 3 (p2.B), not machine 1.
	tr, ok := combined.Transition(Ref{Machine: 2, Name: "p2.a2"})
	if !ok || tr.Dest != 3 {
		t.Fatalf("p2.a2 = %v %v, want dest 3", tr, ok)
	}
}

func TestConcatBehaviourPreserved(t *testing.T) {
	part := twoMachine(t)
	combined, err := Concat(map[string]*System{"p1": part, "p2": part})
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	tc := TestCase{Name: "t", Inputs: []Input{
		Reset(),
		{Port: 0, Sym: "x"},
		{Port: 0, Sym: "i"},
		{Port: 1, Sym: "w"},
	}}
	want, err := part.Run(tc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for partIdx, offset := range []int{0, 2} {
		prefix := []string{"p1", "p2"}[partIdx]
		lifted := LiftTestCase(tc, prefix, offset)
		got, err := combined.Run(lifted)
		if err != nil {
			t.Fatalf("Run lifted: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("lengths differ")
		}
		for i := range want {
			if want[i].Sym == Null {
				if got[i].Sym != Null {
					t.Fatalf("step %d: %v, want reset null", i, got[i])
				}
				continue
			}
			wantSym := Symbol(prefix + ":" + string(want[i].Sym))
			if got[i].Sym != wantSym || got[i].Port != want[i].Port+offset {
				t.Fatalf("step %d: %v, want %s at port %d", i, got[i], wantSym, want[i].Port+offset)
			}
		}
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := Concat(nil); err == nil {
		t.Error("want error for empty parts")
	}
	if _, err := Concat(map[string]*System{"p": nil}); err == nil {
		t.Error("want error for nil part")
	}
}
