// Package cfsm models systems of communicating finite state machines with
// distributed ports, following Section 2 of Ghedamsi, v. Bochmann and Dssouli
// (ICDCS 1993).
//
// A system consists of N deterministic partial FSMs. Each machine M_i owns an
// external port P_i and one input queue per peer machine. Transitions are of
// two kinds: external-output transitions deliver their output to the
// machine's own port; internal-output transitions deliver their output to a
// peer machine's input queue, where it immediately triggers an
// external-output transition of the peer (the paper restricts internal
// chains to length two). Under the paper's synchronization assumption only
// one message circulates at a time, so the global behaviour is deterministic
// and a test case is a sequence of (port, input) pairs with one observable
// output per input.
package cfsm

import (
	"fmt"
	"sort"
	"strings"

	"cfsmdiag/internal/fsm"
)

// State and Symbol are shared with the single-machine substrate.
type (
	State  = fsm.State
	Symbol = fsm.Symbol
)

// Distinguished symbols re-exported from the fsm package.
const (
	Null    = fsm.Null
	Epsilon = fsm.Epsilon
)

// DestEnv marks a transition whose output is addressed to the machine's own
// external port (an "external-output transition" in the paper's terms).
const DestEnv = -1

// Transition is one labeled transition of a machine in the system. Dest is
// DestEnv for external-output transitions and the 0-based index of the
// receiving machine for internal-output transitions.
type Transition struct {
	Name   string
	From   State
	Input  Symbol
	Output Symbol
	To     State
	Dest   int
}

// Internal reports whether the transition delivers its output to a peer
// machine rather than to the machine's own external port.
func (t Transition) Internal() bool { return t.Dest != DestEnv }

// String renders the transition in the paper's style, annotating internal
// outputs with their destination machine, e.g. "t6: s1 -c/c'→M2-> s2".
func (t Transition) String() string {
	name := t.Name
	if name == "" {
		name = "?"
	}
	out := string(t.Output)
	if t.Internal() {
		out = fmt.Sprintf("%s→M%d", t.Output, t.Dest+1)
	}
	return fmt.Sprintf("%s: %s -%s/%s-> %s", name, t.From, t.Input, out, t.To)
}

// Machine is one deterministic partial FSM of a system. Machines are
// immutable after construction (the rewiring operations return modified
// copies), so they are safe for concurrent use by any number of goroutines.
type Machine struct {
	name    string
	initial State
	states  []State
	trans   map[fsm.Key]Transition
	byName  map[string]fsm.Key
	// sorted caches the transitions ordered by (From, Input); it is built at
	// construction and kept in sync by setTransition, so the hot loops over
	// Transitions (validation, Refs, the alphabet accessors, fault
	// enumeration) never re-sort.
	sorted []Transition
}

// NewMachine builds one machine of a system. Determinism, unique transition
// names and declared endpoints are validated here; the cross-machine rules
// (destination indices, alphabet partition, internal-chain restriction) are
// validated by NewSystem.
func NewMachine(name string, initial State, states []State, transitions []Transition) (*Machine, error) {
	if name == "" {
		return nil, fmt.Errorf("cfsm: machine name must not be empty")
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("cfsm %s: at least one state is required", name)
	}
	stateSet := make(map[State]bool, len(states))
	for _, s := range states {
		if s == "" {
			return nil, fmt.Errorf("cfsm %s: empty state name", name)
		}
		if stateSet[s] {
			return nil, fmt.Errorf("cfsm %s: duplicate state %q", name, s)
		}
		stateSet[s] = true
	}
	if !stateSet[initial] {
		return nil, fmt.Errorf("cfsm %s: initial state %q is not declared", name, initial)
	}
	m := &Machine{
		name:    name,
		initial: initial,
		states:  append([]State(nil), states...),
		trans:   make(map[fsm.Key]Transition, len(transitions)),
		byName:  make(map[string]fsm.Key, len(transitions)),
	}
	sort.Slice(m.states, func(i, j int) bool { return m.states[i] < m.states[j] })
	for _, t := range transitions {
		if t.Name == "" {
			return nil, fmt.Errorf("cfsm %s: transition %v has no name", name, t)
		}
		if _, dup := m.byName[t.Name]; dup {
			return nil, fmt.Errorf("cfsm %s: duplicate transition name %q", name, t.Name)
		}
		if !stateSet[t.From] || !stateSet[t.To] {
			return nil, fmt.Errorf("cfsm %s: transition %s references an undeclared state", name, t.Name)
		}
		if t.Input == "" || t.Output == "" {
			return nil, fmt.Errorf("cfsm %s: transition %s has an empty symbol", name, t.Name)
		}
		if t.Input == Epsilon || t.Output == Epsilon || t.Input == Null || t.Output == Null {
			return nil, fmt.Errorf("cfsm %s: transition %s uses a reserved symbol", name, t.Name)
		}
		k := fsm.Key{From: t.From, Input: t.Input}
		if prev, clash := m.trans[k]; clash {
			return nil, fmt.Errorf("cfsm %s: nondeterminism: %s and %s share state %q and input %q",
				name, prev.Name, t.Name, t.From, t.Input)
		}
		m.trans[k] = t
		m.byName[t.Name] = k
	}
	m.rebuildSorted()
	return m, nil
}

// rebuildSorted recomputes the cached (From, Input)-ordered transition slice
// from the transition map.
func (m *Machine) rebuildSorted() {
	m.sorted = make([]Transition, 0, len(m.trans))
	for _, t := range m.trans {
		m.sorted = append(m.sorted, t)
	}
	sort.Slice(m.sorted, func(i, j int) bool {
		if m.sorted[i].From != m.sorted[j].From {
			return m.sorted[i].From < m.sorted[j].From
		}
		return m.sorted[i].Input < m.sorted[j].Input
	})
}

// setTransition replaces the transition stored under k, keeping the sorted
// cache consistent. The replacement must preserve the transition's name and
// (From, Input) key — exactly what the rewiring operations do — so the cache
// order is unaffected and only the matching entry needs updating.
func (m *Machine) setTransition(k fsm.Key, t Transition) {
	m.trans[k] = t
	for i := range m.sorted {
		if m.sorted[i].Name == t.Name {
			m.sorted[i] = t
			return
		}
	}
}

// Name returns the machine's display name.
func (m *Machine) Name() string { return m.name }

// Initial returns the machine's initial state.
func (m *Machine) Initial() State { return m.initial }

// States returns the declared states, sorted. The slice is a copy.
func (m *Machine) States() []State { return append([]State(nil), m.states...) }

// HasState reports whether s is declared in the machine.
func (m *Machine) HasState(s State) bool {
	for _, st := range m.states {
		if st == s {
			return true
		}
	}
	return false
}

// Lookup returns the transition defined for (state, input), if any.
func (m *Machine) Lookup(from State, input Symbol) (Transition, bool) {
	t, ok := m.trans[fsm.Key{From: from, Input: input}]
	return t, ok
}

// ByName returns the transition with the given name, if any.
func (m *Machine) ByName(name string) (Transition, bool) {
	k, ok := m.byName[name]
	if !ok {
		return Transition{}, false
	}
	return m.trans[k], true
}

// Transitions returns all transitions sorted by (From, Input). The slice is a
// copy of a cache precomputed at construction time, so calling it in hot
// loops costs one copy, never a re-sort.
func (m *Machine) Transitions() []Transition {
	return append([]Transition(nil), m.sorted...)
}

// transitions returns the cached sorted slice without copying, for
// package-internal read-only iteration on hot paths.
func (m *Machine) transitions() []Transition { return m.sorted }

// NumTransitions returns the number of defined transitions.
func (m *Machine) NumTransitions() int { return len(m.trans) }

func (m *Machine) clone() *Machine {
	c := &Machine{
		name:    m.name,
		initial: m.initial,
		states:  append([]State(nil), m.states...),
		trans:   make(map[fsm.Key]Transition, len(m.trans)),
		byName:  make(map[string]fsm.Key, len(m.byName)),
		sorted:  append([]Transition(nil), m.sorted...),
	}
	for k, t := range m.trans {
		c.trans[k] = t
	}
	for n, k := range m.byName {
		c.byName[n] = k
	}
	return c
}

// ResetSymbol is the distinguished input that resets every machine of a
// system to its initial state, written "R" in the paper.
const ResetSymbol Symbol = "R"

// System is a system of N communicating finite state machines. Systems are
// immutable after construction; Rewire returns modified copies.
//
// Because a System (and its Machines) is never mutated after NewSystem
// returns — all state lives in maps and slices that are only read — a single
// *System may be shared by any number of goroutines simulating, diagnosing
// or enumerating faults concurrently, with no synchronization. Per-run
// mutable state (configurations, runners, oracles) must be per-goroutine.
type System struct {
	machines []*Machine
}

// NewSystem assembles and validates a system. Beyond per-machine validity it
// checks the model rules of Section 2:
//
//   - destination indices of internal-output transitions must name a peer
//     machine (not the machine itself);
//   - within one machine the inputs of external-output transitions (IEO) and
//     of internal-output transitions (IIO) must be disjoint;
//   - the internal-chain restriction: every symbol a machine can send to a
//     peer must, wherever the peer defines it, trigger an external-output
//     transition of the peer — so at most two transitions execute per input;
//   - the reset symbol R must not be used as a transition input.
func NewSystem(machines ...*Machine) (*System, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("cfsm: a system needs at least one machine")
	}
	names := make(map[string]bool, len(machines))
	for _, m := range machines {
		if m == nil {
			return nil, fmt.Errorf("cfsm: nil machine")
		}
		if names[m.name] {
			return nil, fmt.Errorf("cfsm: duplicate machine name %q", m.name)
		}
		names[m.name] = true
	}
	s := &System{machines: machines}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *System) validate() error {
	for i, m := range s.machines {
		ieo := make(map[Symbol]bool)
		iio := make(map[Symbol]bool)
		for _, t := range m.transitions() {
			if t.Input == ResetSymbol {
				return fmt.Errorf("cfsm %s: transition %s uses the reserved reset input %q",
					m.name, t.Name, ResetSymbol)
			}
			if t.Internal() {
				if t.Dest < 0 || t.Dest >= len(s.machines) {
					return fmt.Errorf("cfsm %s: transition %s addresses unknown machine index %d",
						m.name, t.Name, t.Dest)
				}
				if t.Dest == i {
					return fmt.Errorf("cfsm %s: transition %s addresses its own machine", m.name, t.Name)
				}
				iio[t.Input] = true
			} else {
				ieo[t.Input] = true
			}
		}
		for sym := range iio {
			if ieo[sym] {
				return fmt.Errorf("cfsm %s: input %q is used by both external- and internal-output transitions (IEO ∩ IIO must be empty)",
					m.name, sym)
			}
		}
	}
	// Internal-chain restriction: for every internal output symbol y sent by
	// machine i to machine j, every transition of j on input y must be
	// external, so that the chain terminates after the second transition.
	for i, m := range s.machines {
		for _, t := range m.transitions() {
			if !t.Internal() {
				continue
			}
			recv := s.machines[t.Dest]
			for _, u := range recv.transitions() {
				if u.Input == t.Output && u.Internal() {
					return fmt.Errorf("cfsm: internal chain: %s.%s sends %q to %s, whose transition %s forwards it internally (the model allows only internal→external pairs)",
						m.name, t.Name, t.Output, recv.name, u.Name)
				}
			}
			_ = i
		}
	}
	return nil
}

// N returns the number of machines.
func (s *System) N() int { return len(s.machines) }

// Machine returns the i-th machine (0-based). It panics on a bad index, which
// indicates a programming error rather than a runtime condition.
func (s *System) Machine(i int) *Machine { return s.machines[i] }

// Machines returns the machines in system order. The slice is a copy; the
// machines themselves are shared and immutable.
func (s *System) Machines() []*Machine { return append([]*Machine(nil), s.machines...) }

// MachineIndex resolves a machine's display name to its 0-based index. The
// port-map layer (internal/ports) keys its JSON documents by machine name
// and needs the reverse lookup of Machine(i).Name().
func (s *System) MachineIndex(name string) (int, bool) {
	for i, m := range s.machines {
		if m.name == name {
			return i, true
		}
	}
	return 0, false
}

// NumTransitions returns the total number of transitions across all machines.
func (s *System) NumTransitions() int {
	n := 0
	for _, m := range s.machines {
		n += m.NumTransitions()
	}
	return n
}

// Ref identifies a transition globally by machine index and transition name.
type Ref struct {
	Machine int
	Name    string
}

// String renders the reference as "M2.t'6" using the machine's display name
// when available. Refs render as "#<index>.<name>" only if detached from any
// system, which does not happen in practice.
func (r Ref) String() string { return fmt.Sprintf("#%d.%s", r.Machine, r.Name) }

// RefString renders a reference with the machine's display name.
func (s *System) RefString(r Ref) string {
	if r.Machine < 0 || r.Machine >= len(s.machines) {
		return r.String()
	}
	return s.machines[r.Machine].name + "." + r.Name
}

// Transition resolves a Ref to its transition.
func (s *System) Transition(r Ref) (Transition, bool) {
	if r.Machine < 0 || r.Machine >= len(s.machines) {
		return Transition{}, false
	}
	return s.machines[r.Machine].ByName(r.Name)
}

// Refs returns references to every transition of the system in deterministic
// order (machine index, then (From, Input)).
func (s *System) Refs() []Ref {
	var out []Ref
	for i, m := range s.machines {
		for _, t := range m.transitions() {
			out = append(out, Ref{Machine: i, Name: t.Name})
		}
	}
	return out
}

// Rewire returns a copy of the system in which the referenced transition has
// its output replaced by newOutput (if non-empty) and its destination state
// replaced by newTo (if non-empty). The copy is re-validated so that a rewire
// can never produce a system violating the internal-chain restriction.
func (s *System) Rewire(r Ref, newOutput Symbol, newTo State) (*System, error) {
	t, ok := s.Transition(r)
	if !ok {
		return nil, fmt.Errorf("cfsm: no transition %s", s.RefString(r))
	}
	if newTo != "" && !s.machines[r.Machine].HasState(newTo) {
		return nil, fmt.Errorf("cfsm: rewire %s: %q is not a state of %s",
			s.RefString(r), newTo, s.machines[r.Machine].name)
	}
	ms := make([]*Machine, len(s.machines))
	copy(ms, s.machines)
	mc := s.machines[r.Machine].clone()
	k := mc.byName[r.Name]
	if newOutput != "" {
		t.Output = newOutput
	}
	if newTo != "" {
		t.To = newTo
	}
	mc.setTransition(k, t)
	ms[r.Machine] = mc
	out := &System{machines: ms}
	if err := out.validate(); err != nil {
		return nil, fmt.Errorf("cfsm: rewire %s: %w", s.RefString(r), err)
	}
	return out, nil
}

// RewireAddress returns a copy of the system in which the referenced
// transition delivers its output to a different destination: a peer machine
// index, or DestEnv for the machine's own port. It models the "addressing
// faults" the paper's concluding discussion leaves as future work (the
// address component of an output, as opposed to the message type).
//
// The copy is re-validated, so an address rewire that would break the
// IEO/IIO partition or the internal-chain restriction is rejected.
func (s *System) RewireAddress(r Ref, newDest int) (*System, error) {
	t, ok := s.Transition(r)
	if !ok {
		return nil, fmt.Errorf("cfsm: no transition %s", s.RefString(r))
	}
	if newDest == t.Dest {
		return nil, fmt.Errorf("cfsm: rewire %s: destination unchanged", s.RefString(r))
	}
	if newDest != DestEnv && (newDest < 0 || newDest >= len(s.machines)) {
		return nil, fmt.Errorf("cfsm: rewire %s: unknown destination %d", s.RefString(r), newDest)
	}
	ms := make([]*Machine, len(s.machines))
	copy(ms, s.machines)
	mc := s.machines[r.Machine].clone()
	k := mc.byName[r.Name]
	t.Dest = newDest
	mc.setTransition(k, t)
	ms[r.Machine] = mc
	out := &System{machines: ms}
	if err := out.validate(); err != nil {
		return nil, fmt.Errorf("cfsm: rewire %s: %w", s.RefString(r), err)
	}
	return out, nil
}

// Config is a global configuration: the current state of each machine, in
// system order. Under the synchronization assumption all queues are empty
// between inputs, so machine states fully determine the global state.
type Config []State

// InitialConfig returns the configuration with every machine in its initial
// state.
func (s *System) InitialConfig() Config {
	cfg := make(Config, len(s.machines))
	for i, m := range s.machines {
		cfg[i] = m.initial
	}
	return cfg
}

// Clone returns a copy of the configuration.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Key returns a canonical string key for use in search maps.
func (c Config) Key() string {
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = string(s)
	}
	return strings.Join(parts, "|")
}

// Equal reports whether two configurations are identical.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}
