package cfsm

import (
	"fmt"
	"strings"
)

// SequenceDiagram renders the execution of a test case as a Mermaid sequence
// diagram: one participant per machine plus the tester, a message from the
// tester for each input, internal messages between machines, and the
// observable outputs back to the tester. Protocol engineers paste the output
// into any Mermaid renderer to see how a test case exercises the system.
func (s *System) SequenceDiagram(tc TestCase) (string, error) {
	var b strings.Builder
	b.WriteString("sequenceDiagram\n")
	b.WriteString("    participant T as Tester\n")
	for _, m := range s.machines {
		fmt.Fprintf(&b, "    participant %s\n", mermaidID(m.name))
	}

	cfg := s.InitialConfig()
	for i, in := range tc.Inputs {
		next, obs, trace, err := s.Apply(cfg, in)
		if err != nil {
			return "", fmt.Errorf("sequence diagram: step %d: %w", i+1, err)
		}
		if in.IsReset() {
			b.WriteString("    note over T: reset R\n")
			cfg = next
			continue
		}
		target := mermaidID(s.machines[in.Port].name)
		fmt.Fprintf(&b, "    T->>%s: %s\n", target, in.Sym)
		for _, e := range trace {
			if !e.Trans.Internal() {
				continue
			}
			from := mermaidID(s.machines[e.Machine].name)
			to := mermaidID(s.machines[e.Trans.Dest].name)
			fmt.Fprintf(&b, "    %s->>%s: %s (%s)\n", from, to, e.Trans.Output, e.Trans.Name)
		}
		source := mermaidID(s.machines[obs.Port].name)
		if obs.Sym == Epsilon {
			fmt.Fprintf(&b, "    note over %s: ε (no response)\n", source)
		} else {
			fmt.Fprintf(&b, "    %s-->>T: %s\n", source, obs.Sym)
		}
		cfg = next
	}
	return b.String(), nil
}

// mermaidID sanitizes a machine name into a Mermaid participant identifier.
func mermaidID(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "M"
	}
	return b.String()
}
