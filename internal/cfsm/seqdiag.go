package cfsm

import (
	"fmt"
	"strings"
)

// SequenceDiagram renders the execution of a test case as a Mermaid sequence
// diagram: one participant per machine plus the tester, a message from the
// tester for each input, internal messages between machines, and the
// observable outputs back to the tester. Protocol engineers paste the output
// into any Mermaid renderer to see how a test case exercises the system.
func (s *System) SequenceDiagram(tc TestCase) (string, error) {
	return s.sequenceDiagram(tc, -1)
}

// SequenceDiagramSymptom is SequenceDiagram with the symptom annotated: after
// the observation of step symptomStep (0-based into tc.Inputs) a note marks
// where the implementation's output diverged from the specification's.
// A negative step renders the plain diagram.
func (s *System) SequenceDiagramSymptom(tc TestCase, symptomStep int) (string, error) {
	return s.sequenceDiagram(tc, symptomStep)
}

func (s *System) sequenceDiagram(tc TestCase, symptomStep int) (string, error) {
	ids := s.mermaidIDs()
	var b strings.Builder
	b.WriteString("sequenceDiagram\n")
	b.WriteString("    participant T as Tester\n")
	for i, m := range s.machines {
		if ids[i] == m.name {
			fmt.Fprintf(&b, "    participant %s\n", ids[i])
		} else {
			fmt.Fprintf(&b, "    participant %s as %s\n", ids[i], m.name)
		}
	}

	cfg := s.InitialConfig()
	for i, in := range tc.Inputs {
		next, obs, trace, err := s.Apply(cfg, in)
		if err != nil {
			return "", fmt.Errorf("sequence diagram: step %d: %w", i+1, err)
		}
		if in.IsReset() {
			b.WriteString("    note over T: reset R\n")
			cfg = next
			continue
		}
		target := ids[in.Port]
		fmt.Fprintf(&b, "    T->>%s: %s\n", target, in.Sym)
		for _, e := range trace {
			if !e.Trans.Internal() {
				continue
			}
			fmt.Fprintf(&b, "    %s->>%s: %s (%s)\n", ids[e.Machine], ids[e.Trans.Dest], e.Trans.Output, e.Trans.Name)
		}
		source := ids[obs.Port]
		if obs.Sym == Epsilon {
			fmt.Fprintf(&b, "    note over %s: ε (no response)\n", source)
		} else {
			fmt.Fprintf(&b, "    %s-->>T: %s\n", source, obs.Sym)
		}
		if i == symptomStep {
			fmt.Fprintf(&b, "    note over T: symptom at step %d — the implementation's output diverges here\n", i+1)
		}
		cfg = next
	}
	return b.String(), nil
}

// mermaidIDs assigns each machine a unique Mermaid participant identifier.
// Sanitizing can merge distinct names ("M-1" and "M_1" both become "M_1"),
// and "T" is reserved for the tester; collisions get a numeric suffix.
func (s *System) mermaidIDs() []string {
	ids := make([]string, len(s.machines))
	taken := map[string]bool{"T": true}
	for i, m := range s.machines {
		id := mermaidID(m.name)
		if taken[id] {
			for n := 2; ; n++ {
				if c := fmt.Sprintf("%s_%d", id, n); !taken[c] {
					id = c
					break
				}
			}
		}
		taken[id] = true
		ids[i] = id
	}
	return ids
}

// mermaidID sanitizes a machine name into a Mermaid participant identifier.
func mermaidID(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "M"
	}
	return b.String()
}
