package cfsm

import (
	"testing"
)

// TestPatcherMatchesRewire patches every transition of a two-machine system
// through a single Patcher and checks each mutant against the cloning
// Rewire, including restoration when the same machine is patched again.
func TestPatcherMatchesRewire(t *testing.T) {
	sys := mustTwoMachineT(t)
	p := NewPatcher(sys)
	for _, r := range sys.Refs() {
		spec, _ := sys.Transition(r)
		states := sys.Machine(r.Machine).States()
		for _, to := range states {
			if to == spec.To {
				continue
			}
			want, err := sys.Rewire(r, "", to)
			if err != nil {
				t.Fatalf("Rewire(%v, %q): %v", r, to, err)
			}
			got, ok := p.Rewire(r, "", to)
			if !ok {
				t.Fatalf("Patcher.Rewire(%v, %q) failed", r, to)
			}
			for _, r2 := range sys.Refs() {
				wt, _ := want.Transition(r2)
				gt, _ := got.Transition(r2)
				if wt != gt {
					t.Fatalf("patched %v to %q: transition %v = %v, want %v", r, to, r2, gt, wt)
				}
			}
		}
	}
	// After all patches, one more Rewire per machine restores the previous
	// patch: the non-patched transitions must read as the specification.
	for _, r := range sys.Refs() {
		got, ok := p.Rewire(r, "", "")
		if !ok {
			t.Fatalf("identity patch of %v failed", r)
		}
		for _, r2 := range sys.Refs() {
			st, _ := sys.Transition(r2)
			gt, _ := got.Transition(r2)
			if st != gt {
				t.Fatalf("after restore, transition %v = %v, want spec %v", r2, gt, st)
			}
		}
	}
}

// TestPatcherRejects pins the cheap precondition checks.
func TestPatcherRejects(t *testing.T) {
	sys := mustTwoMachineT(t)
	p := NewPatcher(sys)
	if _, ok := p.Rewire(Ref{Machine: 9, Name: "a1"}, "", "s1"); ok {
		t.Error("Rewire accepted an unknown machine")
	}
	if _, ok := p.Rewire(Ref{Machine: 0, Name: "zz"}, "", "s1"); ok {
		t.Error("Rewire accepted an unknown transition")
	}
	if _, ok := p.Rewire(Ref{Machine: 0, Name: "a1"}, "", "zz"); ok {
		t.Error("Rewire accepted an undeclared state")
	}
	if _, ok := p.RewireAddress(Ref{Machine: 0, Name: "a1"}, 7); ok {
		t.Error("RewireAddress accepted an out-of-range destination")
	}
	if _, ok := p.RewireAddress(Ref{Machine: 0, Name: "a1"}, DestEnv); ok {
		t.Error("RewireAddress accepted an unchanged destination")
	}
}

func mustTwoMachineT(t *testing.T) *System {
	t.Helper()
	a, err := NewMachine("A", "s0", []State{"s0", "s1"}, []Transition{
		{Name: "a1", From: "s0", Input: "x", Output: "y", To: "s1", Dest: DestEnv},
		{Name: "a2", From: "s1", Input: "i", Output: "m", To: "s0", Dest: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMachine("B", "q0", []State{"q0", "q1"}, []Transition{
		{Name: "b1", From: "q0", Input: "m", Output: "z", To: "q1", Dest: DestEnv},
		{Name: "b2", From: "q1", Input: "w", Output: "v", To: "q0", Dest: DestEnv},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
