package cfsm

import (
	"fmt"
)

// Concat combines independent systems into one larger system: the machines
// of each part keep their internal wiring (destination indices are shifted)
// and gain a name prefix so that machine names stay unique. The parts do not
// communicate with each other — Concat models co-located but independent
// protocol entities, and is used to build large diagnosis workloads for the
// scaling experiments (a fault in one part must be localized without the
// other parts confusing the search).
func Concat(parts map[string]*System) (*System, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cfsm: Concat needs at least one part")
	}
	// Deterministic part order by prefix.
	prefixes := make([]string, 0, len(parts))
	for p := range parts {
		prefixes = append(prefixes, p)
	}
	sortStrings(prefixes)

	var machines []*Machine
	offset := 0
	for _, prefix := range prefixes {
		part := parts[prefix]
		if part == nil {
			return nil, fmt.Errorf("cfsm: Concat: nil part %q", prefix)
		}
		for i := 0; i < part.N(); i++ {
			m := part.Machine(i)
			var trans []Transition
			for _, t := range m.Transitions() {
				// Namespace symbols per part so that alphabets of different
				// parts cannot collide (a collision would merge IEO/IIO
				// classes across parts).
				nt := Transition{
					Name:   prefix + "." + t.Name,
					From:   t.From,
					Input:  Symbol(prefix + ":" + string(t.Input)),
					Output: Symbol(prefix + ":" + string(t.Output)),
					To:     t.To,
					Dest:   t.Dest,
				}
				if t.Internal() {
					nt.Dest = t.Dest + offset
				}
				trans = append(trans, nt)
			}
			nm, err := NewMachine(prefix+"."+m.Name(), m.Initial(), m.States(), trans)
			if err != nil {
				return nil, fmt.Errorf("cfsm: Concat %q/%s: %w", prefix, m.Name(), err)
			}
			machines = append(machines, nm)
		}
		offset += part.N()
	}
	return NewSystem(machines...)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// LiftTestCase translates a test case of one part into the concatenated
// system: ports are shifted by the part's machine offset and symbols gain
// the part's namespace prefix. partOffset is the index of the part's first
// machine in the concatenated system.
func LiftTestCase(tc TestCase, prefix string, partOffset int) TestCase {
	out := TestCase{Name: prefix + "." + tc.Name}
	for _, in := range tc.Inputs {
		if in.IsReset() {
			out.Inputs = append(out.Inputs, Reset())
			continue
		}
		out.Inputs = append(out.Inputs, Input{
			Port: in.Port + partOffset,
			Sym:  Symbol(prefix + ":" + string(in.Sym)),
		})
	}
	return out
}
