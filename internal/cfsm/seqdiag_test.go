package cfsm

import (
	"strings"
	"testing"
)

func TestSequenceDiagram(t *testing.T) {
	sys := twoMachine(t)
	tc := TestCase{Name: "demo", Inputs: []Input{
		Reset(),
		{Port: 0, Sym: "x"},  // external: A answers y
		{Port: 0, Sym: "i"},  // internal: A sends m to B, B answers z
		{Port: 0, Sym: "zz"}, // undefined: ε
	}}
	diag, err := sys.SequenceDiagram(tc)
	if err != nil {
		t.Fatalf("SequenceDiagram: %v", err)
	}
	for _, want := range []string{
		"sequenceDiagram",
		"participant T as Tester",
		"participant A",
		"participant B",
		"note over T: reset R",
		"T->>A: x",
		"A-->>T: y",
		"A->>B: m (a2)",
		"B-->>T: z",
		"note over A: ε (no response)",
	} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagram missing %q:\n%s", want, diag)
		}
	}
}

func TestMermaidID(t *testing.T) {
	tests := []struct{ in, want string }{
		{"M1", "M1"},
		{"Client", "Client"},
		{"a b'c", "a_b_c"},
		{"", "M"},
	}
	for _, tc := range tests {
		if got := mermaidID(tc.in); got != tc.want {
			t.Errorf("mermaidID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSequenceDiagramBadInput(t *testing.T) {
	sys := twoMachine(t)
	tc := TestCase{Inputs: []Input{{Port: 9, Sym: "x"}}}
	if _, err := sys.SequenceDiagram(tc); err == nil {
		t.Error("want error for invalid port")
	}
}
