package cfsm

import (
	"strings"
	"testing"
)

func TestSequenceDiagram(t *testing.T) {
	sys := twoMachine(t)
	tc := TestCase{Name: "demo", Inputs: []Input{
		Reset(),
		{Port: 0, Sym: "x"},  // external: A answers y
		{Port: 0, Sym: "i"},  // internal: A sends m to B, B answers z
		{Port: 0, Sym: "zz"}, // undefined: ε
	}}
	diag, err := sys.SequenceDiagram(tc)
	if err != nil {
		t.Fatalf("SequenceDiagram: %v", err)
	}
	for _, want := range []string{
		"sequenceDiagram",
		"participant T as Tester",
		"participant A",
		"participant B",
		"note over T: reset R",
		"T->>A: x",
		"A-->>T: y",
		"A->>B: m (a2)",
		"B-->>T: z",
		"note over A: ε (no response)",
	} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagram missing %q:\n%s", want, diag)
		}
	}
}

func TestMermaidID(t *testing.T) {
	tests := []struct{ in, want string }{
		{"M1", "M1"},
		{"Client", "Client"},
		{"a b'c", "a_b_c"},
		{"", "M"},
	}
	for _, tc := range tests {
		if got := mermaidID(tc.in); got != tc.want {
			t.Errorf("mermaidID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSequenceDiagramBadInput(t *testing.T) {
	sys := twoMachine(t)
	tc := TestCase{Inputs: []Input{{Port: 9, Sym: "x"}}}
	if _, err := sys.SequenceDiagram(tc); err == nil {
		t.Error("want error for invalid port")
	}
}

// namedPair builds a minimal 2-machine system with the given machine names
// (same topology as twoMachine).
func namedPair(t *testing.T, nameA, nameB string) *System {
	t.Helper()
	a, err := NewMachine(nameA, "s0", []State{"s0", "s1"}, []Transition{
		{Name: "a1", From: "s0", Input: "x", Output: "y", To: "s1", Dest: DestEnv},
		{Name: "a2", From: "s1", Input: "i", Output: "m", To: "s0", Dest: 1},
		{Name: "a3", From: "s0", Input: "n", Output: "y", To: "s0", Dest: DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine %s: %v", nameA, err)
	}
	b, err := NewMachine(nameB, "q0", []State{"q0", "q1"}, []Transition{
		{Name: "b1", From: "q0", Input: "m", Output: "z", To: "q1", Dest: DestEnv},
		{Name: "b2", From: "q1", Input: "w", Output: "n", To: "q0", Dest: 0},
	})
	if err != nil {
		t.Fatalf("NewMachine %s: %v", nameB, err)
	}
	sys, err := NewSystem(a, b)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// TestMermaidIDCollision: distinct machine names that sanitize to the same
// identifier ("M-1" and "M_1" both become "M_1") must still get distinct
// participants, and the display name is preserved via an alias.
func TestMermaidIDCollision(t *testing.T) {
	sys := namedPair(t, "M-1", "M_1")
	ids := sys.mermaidIDs()
	if ids[0] == ids[1] {
		t.Fatalf("colliding ids: %v", ids)
	}
	diag, err := sys.SequenceDiagram(TestCase{Inputs: []Input{{Port: 0, Sym: "x"}}})
	if err != nil {
		t.Fatalf("SequenceDiagram: %v", err)
	}
	for _, want := range []string{
		"participant M_1 as M-1", // first machine keeps the sanitized id, aliased
		"participant M_1_2 as M_1",
		"T->>M_1: x",
	} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagram missing %q:\n%s", want, diag)
		}
	}

	// A machine literally named "T" must not collide with the tester.
	sys = namedPair(t, "T", "B")
	ids = sys.mermaidIDs()
	if ids[0] == "T" {
		t.Fatalf("machine id %q collides with the tester participant", ids[0])
	}
}

// TestSequenceDiagramSymptom: the annotated variant marks the divergence
// step, and a negative step renders the plain diagram.
func TestSequenceDiagramSymptom(t *testing.T) {
	sys := twoMachine(t)
	tc := TestCase{Inputs: []Input{Reset(), {Port: 0, Sym: "x"}}}
	diag, err := sys.SequenceDiagramSymptom(tc, 1)
	if err != nil {
		t.Fatalf("SequenceDiagramSymptom: %v", err)
	}
	if !strings.Contains(diag, "note over T: symptom at step 2") {
		t.Errorf("diagram missing symptom note:\n%s", diag)
	}
	plain, err := sys.SequenceDiagramSymptom(tc, -1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "symptom") {
		t.Errorf("plain diagram carries a symptom note:\n%s", plain)
	}
	base, _ := sys.SequenceDiagram(tc)
	if plain != base {
		t.Error("SequenceDiagramSymptom(-1) differs from SequenceDiagram")
	}
}
