package cfsm

import (
	"math/rand"
	"testing"
)

func TestProductShape(t *testing.T) {
	sys := twoMachine(t)
	prod, err := sys.Product(false)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	if prod.Initial() != "s0|q0" {
		t.Fatalf("product initial = %v", prod.Initial())
	}
	// Reachable global configurations of the two-machine system:
	// (s0,q0) -x-> (s1,q0) -i-> (s0,q1) -w-> ... plus (s1,q1).
	if got := len(prod.States()); got != 4 {
		t.Fatalf("product has %d states, want 4: %v", got, prod.States())
	}
}

func TestProductBehaviouralEquivalence(t *testing.T) {
	// With undefined inputs materialized, the product must produce exactly
	// the encoded observation sequence of the system for random input
	// sequences.
	sys := twoMachine(t)
	prod, err := sys.Product(true)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	allInputs := []Input{
		Reset(),
		{Port: 0, Sym: "x"}, {Port: 0, Sym: "i"}, {Port: 0, Sym: "n"},
		{Port: 1, Sym: "m"}, {Port: 1, Sym: "w"},
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		ins := make([]Input, n)
		for i := range ins {
			ins[i] = allInputs[rng.Intn(len(allInputs))]
		}
		tc := TestCase{Inputs: ins}
		sysObs, err := sys.Run(tc)
		if err != nil {
			t.Fatalf("system Run: %v", err)
		}
		prodOuts, _ := prod.Run(prod.Initial(), EncodeTestCase(tc))
		wantOuts := EncodeObservations(sysObs)
		for i := range wantOuts {
			if prodOuts[i] != wantOuts[i] {
				t.Fatalf("trial %d: product output %d = %v, want %v (inputs %v)",
					trial, i, prodOuts[i], wantOuts[i], FormatInputs(ins))
			}
		}
	}
}

func TestProductSkipsUndefinedWhenAsked(t *testing.T) {
	sys := twoMachine(t)
	prod, err := sys.Product(false)
	if err != nil {
		t.Fatalf("Product: %v", err)
	}
	// In the initial configuration input i@1 (undefined for A in s0) must
	// not exist as a product transition.
	if _, ok := prod.Lookup(prod.Initial(), EncodeInput(Input{Port: 0, Sym: "i"})); ok {
		t.Fatal("undefined input materialized despite includeUndefined=false")
	}
}

func TestEncodeHelpers(t *testing.T) {
	if got := EncodeInput(Reset()); got != ResetSymbol {
		t.Errorf("EncodeInput(R) = %v", got)
	}
	if got := EncodeInput(Input{Port: 1, Sym: "a"}); got != "a@2" {
		t.Errorf("EncodeInput = %v, want a@2", got)
	}
	if got := EncodeObservation(Observation{Sym: Null, Port: 0}); got != Null {
		t.Errorf("EncodeObservation(-) = %v", got)
	}
	if got := EncodeObservation(Observation{Sym: "z", Port: 1}); got != "z@2" {
		t.Errorf("EncodeObservation = %v, want z@2", got)
	}
}
