package cfsm

import (
	"fmt"
	"strings"
)

// DOT renders the whole system as a Graphviz digraph in the style of the
// paper's Figure 1: one cluster per machine, external-output transitions in
// plain lines and internal-output transitions in bold lines labeled with
// their destination machine.
func (s *System) DOT() string {
	var b strings.Builder
	b.WriteString("digraph system {\n  rankdir=LR;\n  node [shape=circle];\n")
	for i, m := range s.machines {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, m.name)
		fmt.Fprintf(&b, "    start_%d [shape=point];\n    start_%d -> \"%d/%s\";\n",
			i, i, i, string(m.initial))
		for _, st := range m.states {
			fmt.Fprintf(&b, "    \"%d/%s\" [label=%q];\n", i, string(st), string(st))
		}
		for _, t := range m.Transitions() {
			style := ""
			label := fmt.Sprintf("%s: %s/%s", t.Name, t.Input, t.Output)
			if t.Internal() {
				style = ", style=bold"
				label = fmt.Sprintf("%s: %s/%s→%s", t.Name, t.Input, t.Output, s.machines[t.Dest].name)
			}
			fmt.Fprintf(&b, "    \"%d/%s\" -> \"%d/%s\" [label=%q%s];\n",
				i, string(t.From), i, string(t.To), label, style)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
