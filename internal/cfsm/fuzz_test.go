package cfsm

import (
	"testing"
)

// FuzzParseSystem checks the JSON codec's robustness: whatever bytes come
// in, ParseSystem must not panic, and every successfully parsed system must
// survive a marshal/parse round trip with identical shape.
func FuzzParseSystem(f *testing.F) {
	valid := `{"machines":[
	  {"name":"A","initial":"s0","states":["s0","s1"],"transitions":[
	    {"name":"a1","from":"s0","input":"x","output":"y","to":"s1"},
	    {"name":"a2","from":"s1","input":"i","output":"m","to":"s0","dest":"B"}]},
	  {"name":"B","initial":"q0","states":["q0"],"transitions":[
	    {"name":"b1","from":"q0","input":"m","output":"z","to":"q0"}]}]}`
	f.Add([]byte(valid))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"machines":[]}`))
	f.Add([]byte(`{"machines":[{"name":"A","initial":"s0","states":["s0"]}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := ParseSystem(data)
		if err != nil {
			return
		}
		out, err := sys.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of parsed system failed: %v", err)
		}
		back, err := ParseSystem(out)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, out)
		}
		if back.N() != sys.N() || back.NumTransitions() != sys.NumTransitions() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzApply checks that the simulator never panics and keeps its contract
// (configuration length preserved) for arbitrary symbols applied to a fixed
// system.
func FuzzApply(f *testing.F) {
	sys := mustTwoMachine(f)
	f.Add(0, "x")
	f.Add(0, "i")
	f.Add(1, "m")
	f.Add(0, string(ResetSymbol))
	f.Add(2, "zz")
	f.Fuzz(func(t *testing.T, port int, sym string) {
		cfg := sys.InitialConfig()
		next, obs, _, err := sys.Apply(cfg, Input{Port: port, Sym: Symbol(sym)})
		if err != nil {
			return // out-of-range port: fine
		}
		if len(next) != sys.N() {
			t.Fatalf("configuration length changed: %v", next)
		}
		if obs.Sym == "" {
			t.Fatal("empty observation symbol")
		}
	})
}

func mustTwoMachine(f *testing.F) *System {
	f.Helper()
	a, err := NewMachine("A", "s0", []State{"s0", "s1"}, []Transition{
		{Name: "a1", From: "s0", Input: "x", Output: "y", To: "s1", Dest: DestEnv},
		{Name: "a2", From: "s1", Input: "i", Output: "m", To: "s0", Dest: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	b, err := NewMachine("B", "q0", []State{"q0"}, []Transition{
		{Name: "b1", From: "q0", Input: "m", Output: "z", To: "q0", Dest: DestEnv},
	})
	if err != nil {
		f.Fatal(err)
	}
	sys, err := NewSystem(a, b)
	if err != nil {
		f.Fatal(err)
	}
	return sys
}
