package cfsm

import (
	"errors"
	"fmt"
	"strings"

	"cfsmdiag/internal/trace"
)

// Input is one step of a test case: a symbol applied at a machine's external
// port. Port is the 0-based machine index; the paper's superscript notation
// a¹ corresponds to Input{Port: 0, Sym: "a"}. The reset input R may be
// applied at any port and resets the whole system.
type Input struct {
	Port int
	Sym  Symbol
}

// Reset returns the reset input (the port is irrelevant for resets).
func Reset() Input { return Input{Port: 0, Sym: ResetSymbol} }

// IsReset reports whether the input is the system reset.
func (in Input) IsReset() bool { return in.Sym == ResetSymbol }

// String renders the input in the paper's superscript-free style, "a^1".
// Resets render as "R".
func (in Input) String() string {
	if in.IsReset() {
		return string(ResetSymbol)
	}
	return fmt.Sprintf("%s^%d", in.Sym, in.Port+1)
}

// Observation is the externally visible effect of one input: an output
// symbol observed at a port. A reset observes Null; an input undefined in
// the current state observes Epsilon.
type Observation struct {
	Sym  Symbol
	Port int
}

// String renders the observation as "c'^1"; Null renders as "-".
func (o Observation) String() string {
	if o.Sym == Null {
		return string(Null)
	}
	return fmt.Sprintf("%s^%d", o.Sym, o.Port+1)
}

// ObsEqual reports whether two observation sequences are identical.
func ObsEqual(a, b []Observation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatObs renders an observation sequence like the rows of Table 1,
// e.g. "-, c'^1, a^3, a^2, b^3, d'^1".
func FormatObs(obs []Observation) string {
	parts := make([]string, len(obs))
	for i, o := range obs {
		parts[i] = o.String()
	}
	return strings.Join(parts, ", ")
}

// FormatInputs renders an input sequence like "R, a^1, c'^3, c^1, t^2, x^3".
func FormatInputs(ins []Input) string {
	parts := make([]string, len(ins))
	for i, in := range ins {
		parts[i] = in.String()
	}
	return strings.Join(parts, ", ")
}

// TestCase is a named sequence of inputs.
type TestCase struct {
	Name   string
	Inputs []Input
}

// String renders the test case as its input sequence.
func (tc TestCase) String() string { return cFormatTC(tc) }

func cFormatTC(tc TestCase) string {
	if tc.Name == "" {
		return FormatInputs(tc.Inputs)
	}
	return tc.Name + ": " + FormatInputs(tc.Inputs)
}

// Executed records one transition fired while processing an input, for use
// in conflict-set construction (Step 4 of the algorithm).
type Executed struct {
	Machine int
	Trans   Transition
}

// Ref returns the global reference of the executed transition.
func (e Executed) Ref() Ref { return Ref{Machine: e.Machine, Name: e.Trans.Name} }

// ErrChainedInternal is returned when an internal output triggers another
// internal-output transition, which the model forbids. A validated system
// can never produce it; it guards against corrupted or hand-built systems.
var ErrChainedInternal = errors.New("cfsm: internal output triggered another internal-output transition")

// Apply processes a single input in the given configuration under the
// synchronization assumption and returns the successor configuration, the
// observation, and the transitions executed (at most two: an internal-output
// transition and the external-output transition it triggers).
//
// Semantics, following Section 2:
//   - a reset returns the initial configuration and observes Null;
//   - an input undefined in the addressed machine's current state leaves the
//     configuration unchanged and observes Epsilon at the addressed port;
//   - an external-output transition observes its output at its own port;
//   - an internal-output transition forwards its output to the destination
//     machine, whose (external) transition on that symbol produces the
//     observation at the destination port; if the destination machine has no
//     transition for the symbol in its current state, Epsilon is observed at
//     the destination port.
//
// When no transition fires (the undefined-input case) the configuration is
// unchanged and Apply returns cfg itself, not a copy; callers that mutate the
// successor must clone it first. Whenever a transition fires the returned
// configuration is a fresh clone. Apply never mutates cfg.
//
// Apply is safe for concurrent use: a System is immutable after
// construction, so any number of goroutines may simulate the same System
// (each with its own Config) in parallel.
func (s *System) Apply(cfg Config, in Input) (Config, Observation, []Executed, error) {
	recordStep()
	if in.IsReset() {
		recordReset()
		return s.InitialConfig(), Observation{Sym: Null, Port: in.Port}, nil, nil
	}
	if in.Port < 0 || in.Port >= len(s.machines) {
		return nil, Observation{}, nil, fmt.Errorf("cfsm: input %v addresses unknown port %d", in, in.Port)
	}
	if len(cfg) != len(s.machines) {
		return nil, Observation{}, nil, fmt.Errorf("cfsm: configuration has %d entries for %d machines", len(cfg), len(s.machines))
	}
	m := s.machines[in.Port]
	t, ok := m.Lookup(cfg[in.Port], in.Sym)
	if !ok {
		// The configuration is unchanged: share it instead of cloning. This
		// removes the dominant allocation when simulating partial machines.
		return cfg, Observation{Sym: Epsilon, Port: in.Port}, nil, nil
	}
	next := cfg.Clone()
	next[in.Port] = t.To
	trace := []Executed{{Machine: in.Port, Trans: t}}
	if !t.Internal() {
		return next, Observation{Sym: t.Output, Port: in.Port}, trace, nil
	}
	j := t.Dest
	recv := s.machines[j]
	t2, ok := recv.Lookup(next[j], t.Output)
	if !ok {
		// The forwarded symbol is undefined in the receiver's current state:
		// nothing observable happens at the receiver beyond silence.
		return next, Observation{Sym: Epsilon, Port: j}, trace, nil
	}
	if t2.Internal() {
		return nil, Observation{}, nil, fmt.Errorf("%w: %s.%s -> %s.%s",
			ErrChainedInternal, m.name, t.Name, recv.name, t2.Name)
	}
	next[j] = t2.To
	trace = append(trace, Executed{Machine: j, Trans: t2})
	return next, Observation{Sym: t2.Output, Port: j}, trace, nil
}

// Runner executes inputs against a system while reusing a scratch
// configuration and trace buffer, so that a steady-state step performs no
// heap allocation (Apply, by contrast, clones the configuration whenever a
// transition fires). It is the simulator hot path under Run, RunTrace and
// RunSuite, and the tool of choice for long-running simulations such as the
// exhaustive mutant sweeps.
//
// A Runner is NOT safe for concurrent use; give each goroutine its own
// Runner. The System it runs is immutable and may be shared freely.
type Runner struct {
	sys    *System
	cfg    Config
	trace  [2]Executed
	tracer *trace.Tracer // nil = tracing off; see SetTracer
}

// NewRunner returns a Runner positioned at the system's initial
// configuration.
func (s *System) NewRunner() *Runner {
	return &Runner{sys: s, cfg: s.InitialConfig()}
}

// Reset returns the runner to the initial configuration without allocating.
func (r *Runner) Reset() {
	recordReset()
	for i, m := range r.sys.machines {
		r.cfg[i] = m.initial
	}
}

// Config returns the runner's current configuration. The slice is the
// runner's scratch state: it is valid until the next Step or Reset and must
// be cloned before being retained or mutated.
func (r *Runner) Config() Config { return r.cfg }

// Step processes one input in place, advancing the runner's configuration.
// It has the exact semantics of System.Apply but reuses the runner's scratch
// buffers: the returned Executed slice is valid only until the next Step or
// Reset (clone it to retain it). After a non-nil error the runner's
// configuration is unspecified; Reset before reusing it.
func (r *Runner) Step(in Input) (Observation, []Executed, error) {
	o, ex, err := r.step(in)
	if r.tracer != nil {
		r.traceStep(in, o, ex, err)
	}
	return o, ex, err
}

// step is the untraced hot path behind Step.
func (r *Runner) step(in Input) (Observation, []Executed, error) {
	recordStep()
	s := r.sys
	if in.IsReset() {
		r.Reset()
		return Observation{Sym: Null, Port: in.Port}, nil, nil
	}
	if in.Port < 0 || in.Port >= len(s.machines) {
		return Observation{}, nil, fmt.Errorf("cfsm: input %v addresses unknown port %d", in, in.Port)
	}
	m := s.machines[in.Port]
	t, ok := m.Lookup(r.cfg[in.Port], in.Sym)
	if !ok {
		return Observation{Sym: Epsilon, Port: in.Port}, nil, nil
	}
	r.cfg[in.Port] = t.To
	r.trace[0] = Executed{Machine: in.Port, Trans: t}
	if !t.Internal() {
		return Observation{Sym: t.Output, Port: in.Port}, r.trace[:1], nil
	}
	j := t.Dest
	recv := s.machines[j]
	t2, ok := recv.Lookup(r.cfg[j], t.Output)
	if !ok {
		// The forwarded symbol is undefined in the receiver's current state:
		// nothing observable happens at the receiver beyond silence.
		return Observation{Sym: Epsilon, Port: j}, r.trace[:1], nil
	}
	if t2.Internal() {
		return Observation{}, nil, fmt.Errorf("%w: %s.%s -> %s.%s",
			ErrChainedInternal, m.name, t.Name, recv.name, t2.Name)
	}
	r.cfg[j] = t2.To
	r.trace[1] = Executed{Machine: j, Trans: t2}
	return Observation{Sym: t2.Output, Port: j}, r.trace[:2], nil
}

// Run executes a test case from the initial configuration and returns the
// observation sequence. The runner is left in the configuration the test
// case reaches.
func (r *Runner) Run(tc TestCase) ([]Observation, error) {
	obs := make([]Observation, 0, len(tc.Inputs))
	for i, in := range tc.Inputs {
		o, _, err := r.Step(in)
		if err != nil {
			return nil, fmt.Errorf("test case %s, step %d (%v): %w", tc.Name, i+1, in, err)
		}
		obs = append(obs, o)
	}
	return obs, nil
}

// Run executes a test case from the initial configuration and returns the
// observation sequence.
func (s *System) Run(tc TestCase) ([]Observation, error) {
	r := s.NewRunner()
	return r.Run(tc)
}

// RunTrace executes a test case from the initial configuration and returns
// the observation sequence together with, for each input, the transitions
// the system executed while processing it.
func (s *System) RunTrace(tc TestCase) ([]Observation, [][]Executed, error) {
	return runTrace(s.NewRunner(), tc)
}

// runTrace is the shared loop behind RunTrace and RunTraced.
func runTrace(r *Runner, tc TestCase) ([]Observation, [][]Executed, error) {
	obs := make([]Observation, 0, len(tc.Inputs))
	steps := make([][]Executed, 0, len(tc.Inputs))
	for i, in := range tc.Inputs {
		o, ex, err := r.Step(in)
		if err != nil {
			return nil, nil, fmt.Errorf("test case %s, step %d (%v): %w", tc.Name, i+1, in, err)
		}
		obs = append(obs, o)
		// The runner's trace buffer is reused on the next Step; copy the
		// entries that must outlive it. Steps that fire no transition record
		// nil, matching the historical Apply-based behaviour.
		if len(ex) == 0 {
			steps = append(steps, nil)
		} else {
			steps = append(steps, append([]Executed(nil), ex...))
		}
	}
	return obs, steps, nil
}

// RunSuite executes every test case of a suite and returns the observation
// sequences in suite order. A single runner is reused across the suite, so
// per-case cost is one observation-slice allocation.
func (s *System) RunSuite(suite []TestCase) ([][]Observation, error) {
	r := s.NewRunner()
	out := make([][]Observation, len(suite))
	for i, tc := range suite {
		r.Reset()
		obs, err := r.Run(tc)
		if err != nil {
			return nil, err
		}
		out[i] = obs
	}
	return out, nil
}
