package cfsm

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInputToken parses one input in the notation the library prints:
// "R" for the reset, or "sym^port" with a 1-based port, e.g. "a^1", "c'^3".
// It is the inverse of Input.String.
func ParseInputToken(tok string) (Input, error) {
	tok = strings.TrimSpace(tok)
	if tok == string(ResetSymbol) {
		return Reset(), nil
	}
	i := strings.LastIndex(tok, "^")
	if i <= 0 || i == len(tok)-1 {
		return Input{}, fmt.Errorf("input %q: want sym^port (e.g. a^1) or R", tok)
	}
	port, err := strconv.Atoi(tok[i+1:])
	if err != nil || port < 1 {
		return Input{}, fmt.Errorf("input %q: bad port %q", tok, tok[i+1:])
	}
	return Input{Port: port - 1, Sym: Symbol(tok[:i])}, nil
}

// ParseObservationToken parses one observation: "-" (the reset output) or
// "sym^port" with a 1-based port. It is the inverse of Observation.String.
func ParseObservationToken(tok string) (Observation, error) {
	tok = strings.TrimSpace(tok)
	if tok == string(Null) {
		return Observation{Sym: Null, Port: 0}, nil
	}
	i := strings.LastIndex(tok, "^")
	if i <= 0 || i == len(tok)-1 {
		return Observation{}, fmt.Errorf("observation %q: want sym^port or -", tok)
	}
	port, err := strconv.Atoi(tok[i+1:])
	if err != nil || port < 1 {
		return Observation{}, fmt.Errorf("observation %q: bad port %q", tok, tok[i+1:])
	}
	return Observation{Sym: Symbol(tok[:i]), Port: port - 1}, nil
}
