package cfsm

// Patcher realizes single-transition rewires of a validated system without
// cloning a system per rewire. It keeps one scratch clone of every machine
// and, per rewire, patches a single transition of the relevant scratch in
// place, restoring the machine's previously patched transition first. It is
// the interpreted counterpart of the compiled representation's overlays and
// backs the streaming mutant enumeration (fault.ForEachMutant).
//
// The returned systems alias the patcher's scratch machines: a system
// obtained from a Patcher is valid only until the next Rewire or
// RewireAddress that touches the same machine, and must not be retained
// beyond that or patched concurrently. Unlike System.Rewire, the patched
// system is NOT re-validated: callers must only request rewires they know
// keep the model valid (for example, faults validated against the source
// system).
type Patcher struct {
	src     *System
	scratch []*Machine
	sys     []*System // sys[i] is src with machine i swapped for scratch[i]
	dirty   []string  // name of each machine's patched transition ("" = clean)
}

// NewPatcher returns a patcher over the given system. The source system is
// never modified.
func NewPatcher(s *System) *Patcher {
	p := &Patcher{
		src:     s,
		scratch: make([]*Machine, len(s.machines)),
		sys:     make([]*System, len(s.machines)),
		dirty:   make([]string, len(s.machines)),
	}
	for i, m := range s.machines {
		p.scratch[i] = m.clone()
		ms := make([]*Machine, len(s.machines))
		copy(ms, s.machines)
		ms[i] = p.scratch[i]
		p.sys[i] = &System{machines: ms}
	}
	return p
}

// restore returns machine i's scratch clone to the specification.
func (p *Patcher) restore(i int) {
	if p.dirty[i] == "" {
		return
	}
	src := p.src.machines[i]
	k := src.byName[p.dirty[i]]
	p.scratch[i].setTransition(k, src.trans[k])
	p.dirty[i] = ""
}

// patch installs t at the referenced slot and returns the aliased mutant.
func (p *Patcher) patch(r Ref, t Transition) *System {
	i := r.Machine
	p.restore(i)
	p.scratch[i].setTransition(p.src.machines[i].byName[r.Name], t)
	p.dirty[i] = r.Name
	return p.sys[i]
}

// Rewire is the reusable-buffer counterpart of System.Rewire: the referenced
// transition's output is replaced by newOutput (if non-empty) and its next
// state by newTo (if non-empty). It reports ok=false when the transition does
// not exist or newTo is not a declared state.
func (p *Patcher) Rewire(r Ref, newOutput Symbol, newTo State) (*System, bool) {
	t, ok := p.src.Transition(r)
	if !ok {
		return nil, false
	}
	if newTo != "" && !p.src.machines[r.Machine].HasState(newTo) {
		return nil, false
	}
	if newOutput != "" {
		t.Output = newOutput
	}
	if newTo != "" {
		t.To = newTo
	}
	return p.patch(r, t), true
}

// RewireAddress is the reusable-buffer counterpart of System.RewireAddress:
// the referenced transition delivers its output to newDest. It reports
// ok=false when the transition does not exist, the destination is unchanged
// or out of range; the model-rule re-validation of System.RewireAddress is
// NOT repeated (see the type comment).
func (p *Patcher) RewireAddress(r Ref, newDest int) (*System, bool) {
	t, ok := p.src.Transition(r)
	if !ok || newDest == t.Dest {
		return nil, false
	}
	if newDest != DestEnv && (newDest < 0 || newDest >= len(p.src.machines)) {
		return nil, false
	}
	t.Dest = newDest
	return p.patch(r, t), true
}
