package cfsm

import "sort"

// The alphabet accessors compute the input/output partition of Section 2.1
// from the transition relation: IEO_i and IIO_i partition machine i's input
// alphabet, OEO_i collects outputs addressed to the machine's own port, and
// OIO_{i>j} collects outputs machine i sends to machine j. The diagnosis
// algorithm uses OEO and OIO as the hypothesis spaces for output faults.

func symbolSet(syms map[Symbol]bool) []Symbol {
	out := make([]Symbol, 0, len(syms))
	for s := range syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IEO returns the inputs of machine i's external-output transitions, sorted.
func (s *System) IEO(i int) []Symbol {
	set := make(map[Symbol]bool)
	for _, t := range s.machines[i].transitions() {
		if !t.Internal() {
			set[t.Input] = true
		}
	}
	return symbolSet(set)
}

// IIO returns the inputs of machine i's internal-output transitions, sorted.
func (s *System) IIO(i int) []Symbol {
	set := make(map[Symbol]bool)
	for _, t := range s.machines[i].transitions() {
		if t.Internal() {
			set[t.Input] = true
		}
	}
	return symbolSet(set)
}

// Inputs returns machine i's full input alphabet I_i = IEO_i ∪ IIO_i, sorted.
func (s *System) Inputs(i int) []Symbol {
	set := make(map[Symbol]bool)
	for _, t := range s.machines[i].transitions() {
		set[t.Input] = true
	}
	return symbolSet(set)
}

// OEO returns the outputs of machine i's external-output transitions, sorted.
func (s *System) OEO(i int) []Symbol {
	set := make(map[Symbol]bool)
	for _, t := range s.machines[i].transitions() {
		if !t.Internal() {
			set[t.Output] = true
		}
	}
	return symbolSet(set)
}

// OIO returns the outputs machine i addresses to machine j, sorted. It is
// the hypothesis space for output faults of internal-output transitions
// (Step 5B: "we check all outputs in the set OIO_{i>j} … with the exception
// of the expected output").
func (s *System) OIO(i, j int) []Symbol {
	set := make(map[Symbol]bool)
	for _, t := range s.machines[i].transitions() {
		if t.Internal() && t.Dest == j {
			set[t.Output] = true
		}
	}
	return symbolSet(set)
}

// AlternativeOutputs returns the output-fault hypothesis space for the
// referenced transition: the outputs the transition's class admits (OEO_i
// for external-output transitions, OIO_{i>j} for internal ones) minus the
// specified output. The paper's fault model restricts output faults to the
// message-type component, so the address (Dest) is never varied.
func (s *System) AlternativeOutputs(r Ref) []Symbol {
	t, ok := s.Transition(r)
	if !ok {
		return nil
	}
	var pool []Symbol
	if t.Internal() {
		pool = s.OIO(r.Machine, t.Dest)
	} else {
		pool = s.OEO(r.Machine)
	}
	out := make([]Symbol, 0, len(pool))
	for _, o := range pool {
		if o != t.Output {
			out = append(out, o)
		}
	}
	return out
}
