package cfsm

import (
	"strconv"

	"cfsmdiag/internal/trace"
)

// SetTracer attaches a structured tracer to the runner. Every subsequent
// Step emits sim.* events describing the input consumed, the transitions
// fired, internal messages enqueued/dequeued, and the output observed.
// A nil tracer detaches; with no tracer attached the hot path pays a single
// pointer test (BenchmarkSimulation stays allocation-lean).
func (r *Runner) SetTracer(t *trace.Tracer) { r.tracer = t }

func portAttr(p int) string { return strconv.Itoa(p + 1) }

// traceStep emits the events for one executed Step. It runs after the step
// so the simulator semantics stay byte-for-byte identical with tracing on.
func (r *Runner) traceStep(in Input, o Observation, ex []Executed, err error) {
	t := r.tracer
	t.Tick()
	if in.IsReset() {
		t.Emit(trace.KindSimStep, trace.A("input", in.String()), trace.A("reset", "true"))
		t.Emit(trace.KindSimObserve, trace.A("output", o.String()), trace.A("port", portAttr(o.Port)))
		return
	}
	t.Emit(trace.KindSimStep, trace.A("input", in.String()), trace.A("port", portAttr(in.Port)))
	if err != nil {
		t.Emit(trace.KindSimObserve, trace.A("error", err.Error()))
		return
	}
	for i, e := range ex {
		tr := e.Trans
		machine := r.sys.machines[e.Machine].name
		t.Emit(trace.KindSimFire,
			trace.A("machine", machine),
			trace.A("transition", tr.Name),
			trace.A("from", string(tr.From)),
			trace.A("to", string(tr.To)),
			trace.A("on", string(tr.Input)),
			trace.A("output", string(tr.Output)))
		if tr.Internal() {
			// Under the synchronization assumption the queue holds exactly
			// this message between the send and the (immediate) receive.
			dest := r.sys.machines[tr.Dest].name
			t.Emit(trace.KindSimSend,
				trace.A("from", machine),
				trace.A("to", dest),
				trace.A("message", string(tr.Output)),
				trace.A("queue", "["+string(tr.Output)+"]"))
			recv := []trace.KV{
				trace.A("machine", dest),
				trace.A("message", string(tr.Output)),
				trace.A("queue", "[]"),
			}
			if i+1 >= len(ex) {
				// The receiver had no transition for the symbol in its
				// current state: the message is consumed silently.
				recv = append(recv, trace.A("undefined", "true"))
			}
			t.Emit(trace.KindSimRecv, recv...)
		}
	}
	t.Emit(trace.KindSimObserve, trace.A("output", o.String()), trace.A("port", portAttr(o.Port)))
}

// RunTraced executes a test case like RunTrace while emitting sim.* events
// into tr, wrapped in a sim.case span. A nil tracer degrades to RunTrace.
func (s *System) RunTraced(tc TestCase, tr *trace.Tracer) ([]Observation, [][]Executed, error) {
	if tr == nil {
		return s.RunTrace(tc)
	}
	span := tr.Begin(trace.KindSimCase,
		trace.A("case", tc.Name),
		trace.A("inputs", FormatInputs(tc.Inputs)))
	r := s.NewRunner()
	r.SetTracer(tr)
	obs, steps, err := runTrace(r, tc)
	if err != nil {
		span.End(trace.A("error", err.Error()))
		return nil, nil, err
	}
	span.End(trace.A("observed", FormatObs(obs)))
	return obs, steps, nil
}
