package cfsm

import (
	"encoding/json"
	"fmt"
)

// The JSON codec gives the CLI and downstream tools a stable on-disk format
// for systems. Destinations are encoded by machine name ("" = the machine's
// own external port) so files remain readable and order-independent.

// TransitionJSON is the serialized form of a Transition.
type TransitionJSON struct {
	Name   string `json:"name"`
	From   string `json:"from"`
	Input  string `json:"input"`
	Output string `json:"output"`
	To     string `json:"to"`
	// Dest is the receiving machine's name for internal-output transitions
	// and empty for external-output transitions.
	Dest string `json:"dest,omitempty"`
}

// MachineJSON is the serialized form of a Machine.
type MachineJSON struct {
	Name        string           `json:"name"`
	Initial     string           `json:"initial"`
	States      []string         `json:"states"`
	Transitions []TransitionJSON `json:"transitions"`
}

// SystemJSON is the serialized form of a System.
type SystemJSON struct {
	Machines []MachineJSON `json:"machines"`
}

// MarshalJSON serializes the system.
func (s *System) MarshalJSON() ([]byte, error) {
	doc := SystemJSON{Machines: make([]MachineJSON, len(s.machines))}
	for i, m := range s.machines {
		mj := MachineJSON{Name: m.name, Initial: string(m.initial)}
		for _, st := range m.states {
			mj.States = append(mj.States, string(st))
		}
		for _, t := range m.Transitions() {
			tj := TransitionJSON{
				Name:   t.Name,
				From:   string(t.From),
				Input:  string(t.Input),
				Output: string(t.Output),
				To:     string(t.To),
			}
			if t.Internal() {
				tj.Dest = s.machines[t.Dest].name
			}
			mj.Transitions = append(mj.Transitions, tj)
		}
		doc.Machines[i] = mj
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ParseSystem decodes a system from its JSON form and validates it.
func ParseSystem(data []byte) (*System, error) {
	var doc SystemJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("cfsm: decode system: %w", err)
	}
	return FromJSON(doc)
}

// FromJSON builds a validated system from its serialized form.
func FromJSON(doc SystemJSON) (*System, error) {
	index := make(map[string]int, len(doc.Machines))
	for i, mj := range doc.Machines {
		if _, dup := index[mj.Name]; dup {
			return nil, fmt.Errorf("cfsm: duplicate machine name %q", mj.Name)
		}
		index[mj.Name] = i
	}
	machines := make([]*Machine, 0, len(doc.Machines))
	for _, mj := range doc.Machines {
		states := make([]State, len(mj.States))
		for i, st := range mj.States {
			states[i] = State(st)
		}
		trans := make([]Transition, 0, len(mj.Transitions))
		for _, tj := range mj.Transitions {
			dest := DestEnv
			if tj.Dest != "" {
				d, ok := index[tj.Dest]
				if !ok {
					return nil, fmt.Errorf("cfsm %s: transition %s addresses unknown machine %q",
						mj.Name, tj.Name, tj.Dest)
				}
				dest = d
			}
			trans = append(trans, Transition{
				Name:   tj.Name,
				From:   State(tj.From),
				Input:  Symbol(tj.Input),
				Output: Symbol(tj.Output),
				To:     State(tj.To),
				Dest:   dest,
			})
		}
		m, err := NewMachine(mj.Name, State(mj.Initial), states, trans)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return NewSystem(machines...)
}
