package cfsm

import (
	"fmt"

	"cfsmdiag/internal/fsm"
)

// Product composes the system into a single global FSM — the "equivalent
// single machine with an exponential algorithm" the paper's introduction
// argues against using directly. The product is the substrate for the
// single-FSM baseline diagnosis and for the cost comparison of experiment E6.
//
// States of the product are the reachable global configurations, named by
// Config.Key(). Inputs are encoded as "sym@port" (1-based port, matching the
// paper's a¹ notation), outputs as "sym@port"; the reset input R is encoded
// as plain "R" with output "-". Inputs undefined in a configuration are
// materialized as Epsilon-observing self-loops when includeUndefined is
// true, so that the product's observable behaviour matches the system's for
// every input the tester could apply.
func (s *System) Product(includeUndefined bool) (*fsm.FSM, error) {
	initial := s.InitialConfig()
	seen := map[string]Config{initial.Key(): initial}
	queue := []Config{initial}
	var transitions []fsm.Transition
	nameCount := 0

	addTransition := func(from Config, in Input, out Observation, to Config) {
		nameCount++
		transitions = append(transitions, fsm.Transition{
			Name:   fmt.Sprintf("g%d", nameCount),
			From:   fsm.State(from.Key()),
			Input:  EncodeInput(in),
			Output: EncodeObservation(out),
			To:     fsm.State(to.Key()),
		})
	}

	for len(queue) > 0 {
		cfg := queue[0]
		queue = queue[1:]
		// The reset input from any configuration returns to the initial one.
		addTransition(cfg, Reset(), Observation{Sym: Null, Port: 0}, initial)
		for port := range s.machines {
			for _, sym := range s.Inputs(port) {
				in := Input{Port: port, Sym: sym}
				next, obs, _, err := s.Apply(cfg, in)
				if err != nil {
					return nil, fmt.Errorf("product: %w", err)
				}
				if obs.Sym == Epsilon && !includeUndefined {
					continue
				}
				addTransition(cfg, in, obs, next)
				if _, ok := seen[next.Key()]; !ok {
					seen[next.Key()] = next
					queue = append(queue, next)
				}
			}
		}
	}

	states := make([]fsm.State, 0, len(seen))
	for k := range seen {
		states = append(states, fsm.State(k))
	}
	return fsm.New("product", fsm.State(initial.Key()), states, transitions)
}

// EncodeInput encodes a system input as a product-machine input symbol.
func EncodeInput(in Input) Symbol {
	if in.IsReset() {
		return ResetSymbol
	}
	return Symbol(fmt.Sprintf("%s@%d", in.Sym, in.Port+1))
}

// EncodeObservation encodes a system observation as a product-machine output
// symbol. Null (the reset output) is encoded without a port, as in Table 1.
func EncodeObservation(o Observation) Symbol {
	if o.Sym == Null {
		return Null
	}
	return Symbol(fmt.Sprintf("%s@%d", o.Sym, o.Port+1))
}

// EncodeTestCase translates a system test case into a product-machine input
// sequence.
func EncodeTestCase(tc TestCase) []Symbol {
	out := make([]Symbol, len(tc.Inputs))
	for i, in := range tc.Inputs {
		out[i] = EncodeInput(in)
	}
	return out
}

// EncodeObservations translates a system observation sequence into product-
// machine output symbols.
func EncodeObservations(obs []Observation) []Symbol {
	out := make([]Symbol, len(obs))
	for i, o := range obs {
		out[i] = EncodeObservation(o)
	}
	return out
}
