package cfsm

import (
	"strings"
	"testing"
)

// twoMachine builds a minimal valid 2-machine system:
//
//	A (port 1): a1: s0 -x/y-> s1 (external), a2: s1 -i/m→B-> s0 (internal)
//	B (port 2): b1: q0 -m/z-> q1 (external), b2: q1 -w/n→A-> q0 (internal)
//	A also defines a3: s0 -n/y-> s0 so B's internal output n is safe in A.
func twoMachine(t *testing.T) *System {
	t.Helper()
	a, err := NewMachine("A", "s0", []State{"s0", "s1"}, []Transition{
		{Name: "a1", From: "s0", Input: "x", Output: "y", To: "s1", Dest: DestEnv},
		{Name: "a2", From: "s1", Input: "i", Output: "m", To: "s0", Dest: 1},
		{Name: "a3", From: "s0", Input: "n", Output: "y", To: "s0", Dest: DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine A: %v", err)
	}
	b, err := NewMachine("B", "q0", []State{"q0", "q1"}, []Transition{
		{Name: "b1", From: "q0", Input: "m", Output: "z", To: "q1", Dest: DestEnv},
		{Name: "b2", From: "q1", Input: "w", Output: "n", To: "q0", Dest: 0},
	})
	if err != nil {
		t.Fatalf("NewMachine B: %v", err)
	}
	sys, err := NewSystem(a, b)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestNewMachineValidation(t *testing.T) {
	tests := []struct {
		name    string
		initial State
		states  []State
		trans   []Transition
		wantErr string
	}{
		{
			name: "reserved null symbol", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{Name: "t", From: "s0", Input: "-", Output: "y", To: "s0", Dest: DestEnv}},
			wantErr: "reserved symbol",
		},
		{
			name: "reserved epsilon symbol", initial: "s0", states: []State{"s0"},
			trans:   []Transition{{Name: "t", From: "s0", Input: "a", Output: Epsilon, To: "s0", Dest: DestEnv}},
			wantErr: "reserved symbol",
		},
		{
			name: "nondeterminism", initial: "s0", states: []State{"s0"},
			trans: []Transition{
				{Name: "t1", From: "s0", Input: "a", Output: "y", To: "s0", Dest: DestEnv},
				{Name: "t2", From: "s0", Input: "a", Output: "z", To: "s0", Dest: DestEnv},
			},
			wantErr: "nondeterminism",
		},
		{
			name: "undeclared initial", initial: "zz", states: []State{"s0"},
			wantErr: "not declared",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewMachine("M", tc.initial, tc.states, tc.trans)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewSystemValidation(t *testing.T) {
	mustMachine := func(name string, initial State, states []State, trans []Transition) *Machine {
		m, err := NewMachine(name, initial, states, trans)
		if err != nil {
			t.Fatalf("NewMachine %s: %v", name, err)
		}
		return m
	}

	t.Run("valid", func(t *testing.T) {
		twoMachine(t)
	})

	t.Run("reset input forbidden", func(t *testing.T) {
		m := mustMachine("A", "s0", []State{"s0"}, []Transition{
			{Name: "t", From: "s0", Input: ResetSymbol, Output: "y", To: "s0", Dest: DestEnv},
		})
		if _, err := NewSystem(m); err == nil || !strings.Contains(err.Error(), "reset") {
			t.Fatalf("got %v, want reset-input error", err)
		}
	})

	t.Run("self destination forbidden", func(t *testing.T) {
		m := mustMachine("A", "s0", []State{"s0"}, []Transition{
			{Name: "t", From: "s0", Input: "a", Output: "y", To: "s0", Dest: 0},
		})
		if _, err := NewSystem(m); err == nil || !strings.Contains(err.Error(), "own machine") {
			t.Fatalf("got %v, want self-destination error", err)
		}
	})

	t.Run("unknown destination index", func(t *testing.T) {
		m := mustMachine("A", "s0", []State{"s0"}, []Transition{
			{Name: "t", From: "s0", Input: "a", Output: "y", To: "s0", Dest: 7},
		})
		if _, err := NewSystem(m); err == nil || !strings.Contains(err.Error(), "unknown machine") {
			t.Fatalf("got %v, want unknown-destination error", err)
		}
	})

	t.Run("IEO and IIO must be disjoint", func(t *testing.T) {
		a := mustMachine("A", "s0", []State{"s0", "s1"}, []Transition{
			{Name: "t1", From: "s0", Input: "a", Output: "y", To: "s1", Dest: DestEnv},
			{Name: "t2", From: "s1", Input: "a", Output: "m", To: "s0", Dest: 1},
		})
		b := mustMachine("B", "q0", []State{"q0"}, []Transition{
			{Name: "u1", From: "q0", Input: "m", Output: "z", To: "q0", Dest: DestEnv},
		})
		if _, err := NewSystem(a, b); err == nil || !strings.Contains(err.Error(), "IEO ∩ IIO") {
			t.Fatalf("got %v, want partition error", err)
		}
	})

	t.Run("internal chains forbidden", func(t *testing.T) {
		a := mustMachine("A", "s0", []State{"s0"}, []Transition{
			{Name: "t1", From: "s0", Input: "a", Output: "m", To: "s0", Dest: 1},
		})
		b := mustMachine("B", "q0", []State{"q0"}, []Transition{
			{Name: "u1", From: "q0", Input: "m", Output: "n", To: "q0", Dest: 0},
		})
		if _, err := NewSystem(a, b); err == nil || !strings.Contains(err.Error(), "internal chain") {
			t.Fatalf("got %v, want internal-chain error", err)
		}
	})

	t.Run("duplicate machine names", func(t *testing.T) {
		a := mustMachine("A", "s0", []State{"s0"}, nil)
		a2 := mustMachine("A", "s0", []State{"s0"}, nil)
		if _, err := NewSystem(a, a2); err == nil || !strings.Contains(err.Error(), "duplicate machine") {
			t.Fatalf("got %v, want duplicate-name error", err)
		}
	})

	t.Run("empty system", func(t *testing.T) {
		if _, err := NewSystem(); err == nil {
			t.Fatal("want error for empty system")
		}
	})
}

func TestSystemAccessors(t *testing.T) {
	sys := twoMachine(t)
	if sys.N() != 2 {
		t.Fatalf("N() = %d, want 2", sys.N())
	}
	if sys.NumTransitions() != 5 {
		t.Fatalf("NumTransitions() = %d, want 5", sys.NumTransitions())
	}
	if got := sys.Machine(0).Name(); got != "A" {
		t.Fatalf("Machine(0).Name() = %q", got)
	}
	refs := sys.Refs()
	if len(refs) != 5 {
		t.Fatalf("Refs() = %v, want 5 entries", refs)
	}
	tr, ok := sys.Transition(Ref{Machine: 1, Name: "b2"})
	if !ok || tr.Dest != 0 {
		t.Fatalf("Transition(B.b2) = %v %v", tr, ok)
	}
	if _, ok := sys.Transition(Ref{Machine: 9, Name: "zz"}); ok {
		t.Fatal("Transition with bad machine index should fail")
	}
	if got := sys.RefString(Ref{Machine: 1, Name: "b2"}); got != "B.b2" {
		t.Fatalf("RefString = %q", got)
	}
}

func TestAlphabets(t *testing.T) {
	sys := twoMachine(t)
	if got := sys.IEO(0); len(got) != 2 || got[0] != "n" || got[1] != "x" {
		t.Errorf("IEO(A) = %v, want [n x]", got)
	}
	if got := sys.IIO(0); len(got) != 1 || got[0] != "i" {
		t.Errorf("IIO(A) = %v, want [i]", got)
	}
	if got := sys.OEO(0); len(got) != 1 || got[0] != "y" {
		t.Errorf("OEO(A) = %v, want [y]", got)
	}
	if got := sys.OIO(0, 1); len(got) != 1 || got[0] != "m" {
		t.Errorf("OIO(A>B) = %v, want [m]", got)
	}
	if got := sys.OIO(1, 0); len(got) != 1 || got[0] != "n" {
		t.Errorf("OIO(B>A) = %v, want [n]", got)
	}
	if got := sys.Inputs(0); len(got) != 3 {
		t.Errorf("Inputs(A) = %v, want 3 symbols", got)
	}
}

func TestAlternativeOutputs(t *testing.T) {
	sys := twoMachine(t)
	// a2 is internal to B; OIO(A>B) = {m}; removing the expected output m
	// leaves nothing.
	if got := sys.AlternativeOutputs(Ref{Machine: 0, Name: "a2"}); len(got) != 0 {
		t.Errorf("AlternativeOutputs(a2) = %v, want empty", got)
	}
	// a1 is external; OEO(A) = {y}; removing y leaves nothing.
	if got := sys.AlternativeOutputs(Ref{Machine: 0, Name: "a1"}); len(got) != 0 {
		t.Errorf("AlternativeOutputs(a1) = %v, want empty", got)
	}
	if got := sys.AlternativeOutputs(Ref{Machine: 5, Name: "zz"}); got != nil {
		t.Errorf("AlternativeOutputs(bad ref) = %v, want nil", got)
	}
}

func TestApplySemantics(t *testing.T) {
	sys := twoMachine(t)
	cfg := sys.InitialConfig()
	if cfg.Key() != "s0|q0" {
		t.Fatalf("InitialConfig = %v", cfg)
	}

	t.Run("reset", func(t *testing.T) {
		next, obs, ex, err := sys.Apply(Config{"s1", "q1"}, Reset())
		if err != nil || !next.Equal(cfg) || obs.Sym != Null || ex != nil {
			t.Fatalf("reset: %v %v %v %v", next, obs, ex, err)
		}
	})

	t.Run("external transition", func(t *testing.T) {
		next, obs, ex, err := sys.Apply(cfg, Input{Port: 0, Sym: "x"})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if obs != (Observation{Sym: "y", Port: 0}) {
			t.Fatalf("obs = %v", obs)
		}
		if next.Key() != "s1|q0" {
			t.Fatalf("next = %v", next)
		}
		if len(ex) != 1 || ex[0].Trans.Name != "a1" {
			t.Fatalf("trace = %v", ex)
		}
	})

	t.Run("internal then external pair", func(t *testing.T) {
		next, obs, ex, err := sys.Apply(Config{"s1", "q0"}, Input{Port: 0, Sym: "i"})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		// a2 sends m to B; B's b1 fires and z is observed at port 2.
		if obs != (Observation{Sym: "z", Port: 1}) {
			t.Fatalf("obs = %v", obs)
		}
		if next.Key() != "s0|q1" {
			t.Fatalf("next = %v", next)
		}
		if len(ex) != 2 || ex[0].Trans.Name != "a2" || ex[1].Trans.Name != "b1" {
			t.Fatalf("trace = %v", ex)
		}
	})

	t.Run("undefined input at port", func(t *testing.T) {
		next, obs, ex, err := sys.Apply(cfg, Input{Port: 0, Sym: "zz"})
		if err != nil || !next.Equal(cfg) || obs.Sym != Epsilon || obs.Port != 0 || ex != nil {
			t.Fatalf("undefined: %v %v %v %v", next, obs, ex, err)
		}
	})

	t.Run("undefined reception at destination", func(t *testing.T) {
		// From (s1, q1): a2 sends m to B, but B in q1 has no transition on m.
		next, obs, ex, err := sys.Apply(Config{"s1", "q1"}, Input{Port: 0, Sym: "i"})
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if obs != (Observation{Sym: Epsilon, Port: 1}) {
			t.Fatalf("obs = %v, want ε at port 2", obs)
		}
		if next.Key() != "s0|q1" {
			t.Fatalf("next = %v: sender must still move", next)
		}
		if len(ex) != 1 || ex[0].Trans.Name != "a2" {
			t.Fatalf("trace = %v", ex)
		}
	})

	t.Run("bad port", func(t *testing.T) {
		if _, _, _, err := sys.Apply(cfg, Input{Port: 9, Sym: "x"}); err == nil {
			t.Fatal("want error for bad port")
		}
	})

	t.Run("bad config length", func(t *testing.T) {
		if _, _, _, err := sys.Apply(Config{"s0"}, Input{Port: 0, Sym: "x"}); err == nil {
			t.Fatal("want error for bad config length")
		}
	})
}

func TestRunAndRunTrace(t *testing.T) {
	sys := twoMachine(t)
	tc := TestCase{Name: "t", Inputs: []Input{
		Reset(),
		{Port: 0, Sym: "x"},
		{Port: 0, Sym: "i"},
		{Port: 1, Sym: "w"},
	}}
	obs, steps, err := sys.RunTrace(tc)
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	// The last step: b2 sends n to A in s0; A's a3 fires and y is observed
	// at A's port.
	want := []Observation{
		{Sym: Null, Port: 0},
		{Sym: "y", Port: 0},
		{Sym: "z", Port: 1},
		{Sym: "y", Port: 0},
	}
	if !ObsEqual(obs, want) {
		t.Fatalf("obs = %v, want %v", obs, want)
	}
	if len(steps) != 4 || steps[0] != nil || len(steps[3]) != 2 {
		t.Fatalf("steps = %v", steps)
	}

	obs2, err := sys.Run(tc)
	if err != nil || !ObsEqual(obs, obs2) {
		t.Fatalf("Run disagrees with RunTrace: %v %v", obs2, err)
	}

	suiteObs, err := sys.RunSuite([]TestCase{tc, tc})
	if err != nil || len(suiteObs) != 2 || !ObsEqual(suiteObs[0], suiteObs[1]) {
		t.Fatalf("RunSuite: %v %v", suiteObs, err)
	}
}

func TestRewireSystem(t *testing.T) {
	sys := twoMachine(t)

	t.Run("output", func(t *testing.T) {
		mut, err := sys.Rewire(Ref{Machine: 0, Name: "a1"}, "q", "")
		if err != nil {
			t.Fatalf("Rewire: %v", err)
		}
		tr, _ := mut.Transition(Ref{Machine: 0, Name: "a1"})
		if tr.Output != "q" {
			t.Fatalf("output not rewired: %v", tr)
		}
		// Original untouched.
		orig, _ := sys.Transition(Ref{Machine: 0, Name: "a1"})
		if orig.Output != "y" {
			t.Fatal("Rewire mutated the original system")
		}
	})

	t.Run("transfer", func(t *testing.T) {
		mut, err := sys.Rewire(Ref{Machine: 0, Name: "a1"}, "", "s0")
		if err != nil {
			t.Fatalf("Rewire: %v", err)
		}
		tr, _ := mut.Transition(Ref{Machine: 0, Name: "a1"})
		if tr.To != "s0" {
			t.Fatalf("destination not rewired: %v", tr)
		}
	})

	t.Run("unknown ref", func(t *testing.T) {
		if _, err := sys.Rewire(Ref{Machine: 0, Name: "zz"}, "q", ""); err == nil {
			t.Fatal("want error")
		}
	})

	t.Run("unknown state", func(t *testing.T) {
		if _, err := sys.Rewire(Ref{Machine: 0, Name: "a1"}, "", "nope"); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestFormatting(t *testing.T) {
	if got := (Input{Port: 2, Sym: "x"}).String(); got != "x^3" {
		t.Errorf("Input.String() = %q, want x^3", got)
	}
	if got := Reset().String(); got != "R" {
		t.Errorf("Reset().String() = %q, want R", got)
	}
	if got := (Observation{Sym: "c'", Port: 0}).String(); got != "c'^1" {
		t.Errorf("Observation.String() = %q, want c'^1", got)
	}
	if got := (Observation{Sym: Null, Port: 0}).String(); got != "-" {
		t.Errorf("null Observation.String() = %q, want -", got)
	}
	obs := []Observation{{Sym: Null, Port: 0}, {Sym: "a", Port: 2}}
	if got := FormatObs(obs); got != "-, a^3" {
		t.Errorf("FormatObs = %q", got)
	}
	ins := []Input{Reset(), {Port: 0, Sym: "a"}}
	if got := FormatInputs(ins); got != "R, a^1" {
		t.Errorf("FormatInputs = %q", got)
	}
	tc := TestCase{Name: "tc1", Inputs: ins}
	if got := tc.String(); got != "tc1: R, a^1" {
		t.Errorf("TestCase.String() = %q", got)
	}
	anon := TestCase{Inputs: ins}
	if got := anon.String(); got != "R, a^1" {
		t.Errorf("anonymous TestCase.String() = %q", got)
	}
	tr := Transition{Name: "t6", From: "s1", Input: "c", Output: "c'", To: "s2", Dest: 1}
	if got := tr.String(); got != "t6: s1 -c/c'→M2-> s2" {
		t.Errorf("Transition.String() = %q", got)
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{"s0", "q1"}
	d := c.Clone()
	d[0] = "s1"
	if c[0] != "s0" {
		t.Fatal("Clone is shallow")
	}
	if c.Equal(d) || !c.Equal(Config{"s0", "q1"}) || c.Equal(Config{"s0"}) {
		t.Fatal("Equal misbehaves")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sys := twoMachine(t)
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	back, err := ParseSystem(data)
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	if back.N() != sys.N() || back.NumTransitions() != sys.NumTransitions() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.N(), back.NumTransitions(), sys.N(), sys.NumTransitions())
	}
	// Behaviour must be preserved.
	tc := TestCase{Inputs: []Input{Reset(), {Port: 0, Sym: "x"}, {Port: 0, Sym: "i"}}}
	a, err := sys.Run(tc)
	if err != nil {
		t.Fatalf("Run original: %v", err)
	}
	b, err := back.Run(tc)
	if err != nil {
		t.Fatalf("Run round-tripped: %v", err)
	}
	if !ObsEqual(a, b) {
		t.Fatalf("round trip changed behaviour: %v vs %v", a, b)
	}
}

func TestParseSystemErrors(t *testing.T) {
	if _, err := ParseSystem([]byte("{")); err == nil {
		t.Error("want error for malformed JSON")
	}
	bad := `{"machines":[{"name":"A","initial":"s0","states":["s0"],
	  "transitions":[{"name":"t","from":"s0","input":"a","output":"y","to":"s0","dest":"NOPE"}]}]}`
	if _, err := ParseSystem([]byte(bad)); err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("got %v, want unknown-machine error", err)
	}
}

func TestSystemDOT(t *testing.T) {
	dot := twoMachine(t).DOT()
	for _, want := range []string{"cluster_0", "cluster_1", "style=bold", "a1: x/y", "a2: i/m→B"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}
