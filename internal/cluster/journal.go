package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Journal operations. Creations record the full sweep inputs; results record
// one merged range. Leases are never journaled — they are volatile by
// design, so a restarted coordinator re-offers every unfinished range.
const (
	opCreate = "create"
	opResult = "result"
)

// journalRecord is one JSONL line of the cluster journal.
type journalRecord struct {
	Op    string    `json:"op"`
	Sweep string    `json:"sweep"`
	At    time.Time `json:"at,omitempty"`
	// create fields
	Spec      json.RawMessage `json:"spec,omitempty"`
	Suite     []CaseJSON      `json:"suite,omitempty"`
	Options   *Options        `json:"options,omitempty"`
	RangeSize int             `json:"rangeSize,omitempty"`
	// result fields
	Range   int          `json:"range"`
	Reports []ReportJSON `json:"reports,omitempty"`
}

// journal is the append handle of the cluster journal file.
type journal struct {
	f *os.File
}

func journalPath(dir string) string { return filepath.Join(dir, "cluster.jsonl") }

// openJournal reads every intact record of dir's journal — a torn tail line
// (crash mid-append) ends the replay without failing it — and returns an
// append handle positioned after the intact prefix.
func openJournal(dir string) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("cluster: create journal dir: %w", err)
	}
	var records []journalRecord
	if f, err := os.Open(journalPath(dir)); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break // torn tail write; everything before it is intact
			}
			records = append(records, rec)
		}
		f.Close()
		if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
			return nil, nil, fmt.Errorf("cluster: read journal: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: open journal for append: %w", err)
	}
	return &journal{f: f}, records, nil
}

// append writes one record under the coordinator's lock.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: encode journal record: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("cluster: append journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
