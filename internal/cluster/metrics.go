package cluster

import "cfsmdiag/internal/obs"

// clusterMetrics is the cfsmdiag_cluster_* family set. Every field is
// nil-safe: a nil registry yields no-op series.
type clusterMetrics struct {
	reg     *obs.Registry
	sweeps  *obs.Counter // cfsmdiag_cluster_sweeps_total
	active  *obs.Gauge   // cfsmdiag_cluster_sweeps_active
	leases  *obs.Counter // cfsmdiag_cluster_leases_total
	expired *obs.Counter // cfsmdiag_cluster_lease_expirations_total
	pending *obs.Gauge   // cfsmdiag_cluster_ranges_pending
	mutants *obs.Counter // cfsmdiag_cluster_mutants_merged_total
}

func newClusterMetrics(reg *obs.Registry) clusterMetrics {
	return clusterMetrics{
		reg: reg,
		sweeps: reg.Counter("cfsmdiag_cluster_sweeps_total",
			"Distributed sweeps created."),
		active: reg.Gauge("cfsmdiag_cluster_sweeps_active",
			"Distributed sweeps currently running."),
		leases: reg.Counter("cfsmdiag_cluster_leases_total",
			"Range leases granted, including replays after expiry."),
		expired: reg.Counter("cfsmdiag_cluster_lease_expirations_total",
			"Leases that timed out and returned their range to the pending pool."),
		pending: reg.Gauge("cfsmdiag_cluster_ranges_pending",
			"Ranges currently waiting for a worker across all sweeps."),
		mutants: reg.Counter("cfsmdiag_cluster_mutants_merged_total",
			"Mutant verdicts merged into sweep results."),
	}
}

// reports counts result pushes by disposition: merged, duplicate (range
// already done), stale (fencing token superseded), invalid (wrong shape).
func (m clusterMetrics) reports(disposition string) *obs.Counter {
	return m.reg.Counter("cfsmdiag_cluster_reports_total",
		"Range result pushes by disposition.",
		obs.L("disposition", disposition))
}
