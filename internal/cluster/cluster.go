// Package cluster shards the single-transition mutant sweep across
// processes. The mutant space is the unit of sharding: the deterministic
// fault-enumeration order (fault.Enumerate / experiments.RunSweepRange)
// is partitioned into contiguous index ranges, a coordinator hands ranges
// to workers under expiring leases with fencing tokens, and the pushed
// per-range verdict sets are merged in range order — so the distributed
// result is byte-identical to a single-process sweep no matter how many
// workers ran, died, or retried.
//
// The protocol is four HTTP calls (mounted by internal/server under
// /v1/cluster/sweeps, or by Coordinator.Handler directly):
//
//	POST /v1/cluster/sweeps                        create a sweep
//	GET  /v1/cluster/sweeps                        list sweeps (stable order)
//	GET  /v1/cluster/sweeps/{id}                   status (+ result when done)
//	POST /v1/cluster/sweeps/{id}/lease             pull the next range lease
//	POST /v1/cluster/sweeps/{id}/ranges/{n}/result push a range's verdicts
//
// Exactly-once semantics: every lease carries a fencing token; a range's
// result is merged only when the pushed token matches the range's current
// token and the range is not already done. A worker that dies mid-range
// simply lets its lease expire — the range returns to the pending pool and
// is re-leased with a fresh token, so the dead worker's late push (if the
// process was merely slow, not gone) is fenced off as stale. Zero verdicts
// are lost, zero are merged twice.
package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/experiments"
	"cfsmdiag/internal/fault"
)

// Options are the sweep-level execution options carried from creation to
// every worker lease.
type Options struct {
	// CheckEquivalence enables the expensive observational-equivalence
	// classification on undetected and wrongly-localized mutants, exactly as
	// in experiments.SweepOptions.
	CheckEquivalence bool `json:"checkEquivalence,omitempty"`
}

// RangeState is the lifecycle of one shard of the mutant space.
type RangeState string

// Range lifecycle states.
const (
	RangePending RangeState = "pending" // waiting for a worker (or reclaimed)
	RangeLeased  RangeState = "leased"  // held under an unexpired lease
	RangeDone    RangeState = "done"    // verdicts merged exactly once
)

// SweepState is the lifecycle of a distributed sweep.
type SweepState string

// Sweep lifecycle states.
const (
	SweepRunning SweepState = "running"
	SweepDone    SweepState = "done"
)

// --- wire formats ---

// CaseJSON is the wire form of one test case, the same token format as the
// CLI and the /v1 suite endpoints ("a^1", "R").
type CaseJSON struct {
	Name   string   `json:"name"`
	Inputs []string `json:"inputs"`
}

// EncodeCases renders a suite in wire form.
func EncodeCases(suite []cfsm.TestCase) []CaseJSON {
	out := make([]CaseJSON, len(suite))
	for i, tc := range suite {
		cj := CaseJSON{Name: tc.Name}
		for _, in := range tc.Inputs {
			cj.Inputs = append(cj.Inputs, in.String())
		}
		out[i] = cj
	}
	return out
}

// DecodeCases parses a wire-form suite.
func DecodeCases(cases []CaseJSON) ([]cfsm.TestCase, error) {
	var out []cfsm.TestCase
	for i, cj := range cases {
		tc := cfsm.TestCase{Name: cj.Name}
		if tc.Name == "" {
			tc.Name = fmt.Sprintf("tc%d", i+1)
		}
		for _, tok := range cj.Inputs {
			in, err := cfsm.ParseInputToken(tok)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", tc.Name, err)
			}
			tc.Inputs = append(tc.Inputs, in)
		}
		out = append(out, tc)
	}
	return out, nil
}

// FaultJSON is the wire form of a fault.Fault. Dest carries no omitempty:
// machine index 0 is a valid faulty destination for the addressing
// extension, so the zero value must survive the round trip.
type FaultJSON struct {
	Machine    int    `json:"machine"`
	Transition string `json:"transition"`
	Kind       int    `json:"kind"`
	Output     string `json:"output,omitempty"`
	To         string `json:"to,omitempty"`
	Dest       int    `json:"dest"`
}

// ReportJSON is the wire form of one mutant's verdict — a lossless encoding
// of experiments.MutantReport, so the coordinator's merge reproduces the
// local sweep byte for byte.
type ReportJSON struct {
	Fault            FaultJSON `json:"fault"`
	Outcome          int       `json:"outcome"`
	AdditionalTests  int       `json:"additionalTests,omitempty"`
	AdditionalInputs int       `json:"additionalInputs,omitempty"`
	ExactFault       bool      `json:"exactFault,omitempty"`
	EquivalentToSpec bool      `json:"equivalentToSpec,omitempty"`
}

// EncodeReports converts mutant reports to wire form.
func EncodeReports(reports []experiments.MutantReport) []ReportJSON {
	out := make([]ReportJSON, len(reports))
	for i, r := range reports {
		out[i] = ReportJSON{
			Fault: FaultJSON{
				Machine:    r.Fault.Ref.Machine,
				Transition: r.Fault.Ref.Name,
				Kind:       int(r.Fault.Kind),
				Output:     string(r.Fault.Output),
				To:         string(r.Fault.To),
				Dest:       r.Fault.Dest,
			},
			Outcome:          int(r.Outcome),
			AdditionalTests:  r.AdditionalTests,
			AdditionalInputs: r.AdditionalIn,
			ExactFault:       r.ExactFault,
			EquivalentToSpec: r.EquivalentToSpec,
		}
	}
	return out
}

// DecodeReports converts wire-form reports back to mutant reports.
func DecodeReports(reports []ReportJSON) []experiments.MutantReport {
	out := make([]experiments.MutantReport, len(reports))
	for i, r := range reports {
		out[i] = experiments.MutantReport{
			Fault: fault.Fault{
				Ref:    cfsm.Ref{Machine: r.Fault.Machine, Name: r.Fault.Transition},
				Kind:   fault.Kind(r.Fault.Kind),
				Output: cfsm.Symbol(r.Fault.Output),
				To:     cfsm.State(r.Fault.To),
				Dest:   r.Fault.Dest,
			},
			Outcome:          experiments.MutantOutcome(r.Outcome),
			AdditionalTests:  r.AdditionalTests,
			AdditionalIn:     r.AdditionalInputs,
			ExactFault:       r.ExactFault,
			EquivalentToSpec: r.EquivalentToSpec,
		}
	}
	return out
}

// CreateRequest is the wire form of sweep creation. Spec may be replaced by
// SpecRef (a content hash of a registered model) when the coordinator runs
// inside the full server; the standalone handler resolves inline documents
// only.
type CreateRequest struct {
	Spec    cfsm.SystemJSON `json:"spec"`
	SpecRef string          `json:"specRef,omitempty"`
	// Suite is the initial test suite; omitted selects the generated
	// transition tour of the spec.
	Suite []CaseJSON `json:"suite,omitempty"`
	// RangeSize is the number of consecutive mutant indices per shard;
	// <= 0 selects the coordinator's default.
	RangeSize        int  `json:"rangeSize,omitempty"`
	CheckEquivalence bool `json:"checkEquivalence,omitempty"`
}

// LeaseRequest is the wire form of a range pull.
type LeaseRequest struct {
	// Worker names the puller for status/metrics; empty is anonymous.
	Worker string `json:"worker,omitempty"`
}

// Lease is a granted range: the work (spec, suite, bounds), the fencing
// token that must accompany the result push, and the deadline after which
// the range may be re-leased to someone else.
type Lease struct {
	Sweep     string          `json:"sweep"`
	Range     int             `json:"range"` // range index within the sweep
	Lo        int             `json:"lo"`    // first fault-enumeration index
	Hi        int             `json:"hi"`    // one past the last index
	Token     int64           `json:"token"` // fencing token
	TTLMillis int64           `json:"ttlMillis"`
	Spec      json.RawMessage `json:"spec"`
	Suite     []CaseJSON      `json:"suite"`
	Options   Options         `json:"options"`
}

// ReportRequest is the wire form of a range's result push.
type ReportRequest struct {
	Token   int64        `json:"token"`
	Worker  string       `json:"worker,omitempty"`
	Reports []ReportJSON `json:"reports"`
}

// ReportResponse acknowledges a merged range.
type ReportResponse struct {
	Merged     bool `json:"merged"`
	DoneRanges int  `json:"doneRanges"`
	Ranges     int  `json:"ranges"`
	SweepDone  bool `json:"sweepDone"`
}

// RangeStatus is one shard's public status.
type RangeStatus struct {
	Range  int        `json:"range"`
	Lo     int        `json:"lo"`
	Hi     int        `json:"hi"`
	State  RangeState `json:"state"`
	Leases int        `json:"leases,omitempty"` // lease grants incl. replays
	Worker string     `json:"worker,omitempty"` // current/last lease holder
}

// Summary aggregates a finished sweep like the local sweep's outcome table.
type Summary struct {
	Mutants              int            `json:"mutants"`
	Detected             int            `json:"detected"`
	Outcomes             map[string]int `json:"outcomes"`
	UndetectedEquivalent int            `json:"undetectedEquivalent,omitempty"`
	AdditionalTests      int            `json:"additionalTests"`
	AdditionalInputs     int            `json:"additionalInputs"`
	SuiteCases           int            `json:"suiteCases"`
}

// SweepStatus is a sweep's public status document.
type SweepStatus struct {
	ID        string     `json:"id"`
	State     SweepState `json:"state"`
	CreatedAt time.Time  `json:"createdAt"`
	Mutants   int        `json:"mutants"`
	RangeSize int        `json:"rangeSize"`
	Ranges    int        `json:"ranges"`
	Pending   int        `json:"pendingRanges"`
	Leased    int        `json:"leasedRanges"`
	Done      int        `json:"doneRanges"`
	// Expirations counts leases that timed out and sent their range back to
	// the pending pool; Stale and Duplicates count fenced-off result pushes.
	Expirations int64 `json:"leaseExpirations,omitempty"`
	Stale       int64 `json:"staleReports,omitempty"`
	Duplicates  int64 `json:"duplicateReports,omitempty"`
	SuiteCases  int   `json:"suiteCases"`
	// Result carries the merged outcome once every range is done.
	Result *Summary `json:"result,omitempty"`
}
