package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/experiments"
	"cfsmdiag/internal/obs"
	"cfsmdiag/internal/server/api"
)

// WorkerConfig tunes a sweep worker.
type WorkerConfig struct {
	// Name identifies the worker in leases and status documents; empty
	// selects "worker".
	Name string
	// Coordinators are the static coordinator base URLs (e.g.
	// "http://127.0.0.1:8080") polled for work. Static coordinators are
	// never dropped, no matter how often they fail.
	Coordinators []string
	// PollInterval is the idle back-off between passes that found no work;
	// <= 0 selects 200ms.
	PollInterval time.Duration
	// Workers is the per-range executor parallelism (experiments
	// SweepOptions.Workers); <= 0 selects 1, the exact serial path — process
	// scaling comes from running more worker processes, not more goroutines.
	Workers int
	// Client overrides the HTTP client; nil selects a 30s-timeout client.
	Client *http.Client
	// Registry receives cfsmdiag_cluster_worker_* metrics; nil disables.
	Registry *obs.Registry
	// Logger receives operational notes; nil disables.
	Logger *obs.Logger
}

// attachFailureLimit drops an Attach()-added coordinator after this many
// consecutive failed passes; flag-configured coordinators are kept forever.
const attachFailureLimit = 10

// coordinator is one polled coordinator endpoint.
type coordinator struct {
	url      string
	static   bool // from WorkerConfig.Coordinators: never dropped
	failures int  // consecutive failed passes (attached endpoints only)
}

// Worker polls coordinators for range leases, runs each leased range on the
// local sweep engine and pushes the verdicts back under the lease's fencing
// token. A worker holds no sweep state worth preserving: kill it at any
// point and its leases expire and replay elsewhere.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	mu     sync.Mutex
	coords []*coordinator
	specs  map[string]*parsedSweep // (coordinator, sweep) -> parsed inputs

	stop chan struct{}
	done chan struct{}
}

// parsedSweep caches a lease's decoded spec and suite so a worker parses
// each sweep's inputs once, not once per range.
type parsedSweep struct {
	spec  *cfsm.System
	suite []cfsm.TestCase
}

// NewWorker builds a worker; Start begins polling.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	w := &Worker{
		cfg:    cfg,
		client: cfg.Client,
		specs:  make(map[string]*parsedSweep),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	for _, u := range cfg.Coordinators {
		w.coords = append(w.coords, &coordinator{url: u, static: true})
	}
	return w
}

// Attach adds a coordinator endpoint at runtime (the /v1/cluster/attach
// route). Attached endpoints are dropped after attachFailureLimit
// consecutive failed passes so a departed ad-hoc coordinator does not poison
// the poll loop forever.
func (w *Worker) Attach(url string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, c := range w.coords {
		if c.url == url {
			c.failures = 0
			return
		}
	}
	w.coords = append(w.coords, &coordinator{url: url})
	w.cfg.Logger.Info("cluster: coordinator attached", "worker", w.cfg.Name, "coordinator", url)
}

// Coordinators returns the currently polled endpoints.
func (w *Worker) Coordinators() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, len(w.coords))
	for i, c := range w.coords {
		out[i] = c.url
	}
	return out
}

// Start launches the polling loop; Stop halts it.
func (w *Worker) Start() {
	go func() {
		defer close(w.done)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-w.stop
			cancel()
		}()
		for {
			select {
			case <-w.stop:
				return
			default:
			}
			n, _ := w.RunOnce(ctx)
			if n == 0 {
				select {
				case <-w.stop:
					return
				case <-time.After(w.cfg.PollInterval):
				}
			}
		}
	}()
}

// Stop halts the polling loop and waits for the in-flight pass to finish.
func (w *Worker) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// RunOnce performs one pass over every coordinator: list running sweeps,
// then drain leases until each reports no pending work. It returns the
// number of ranges completed and the first error encountered (the pass
// still visits every coordinator).
func (w *Worker) RunOnce(ctx context.Context) (int, error) {
	w.mu.Lock()
	coords := append([]*coordinator(nil), w.coords...)
	w.mu.Unlock()

	completed := 0
	var firstErr error
	for _, c := range coords {
		n, err := w.drainCoordinator(ctx, c.url)
		completed += n
		w.noteResult(c, err)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return completed, firstErr
}

// noteResult updates a coordinator's failure streak and drops exhausted
// attached endpoints.
func (w *Worker) noteResult(c *coordinator, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err == nil {
		c.failures = 0
		return
	}
	c.failures++
	w.cfg.Logger.Warn("cluster: coordinator pass failed",
		"worker", w.cfg.Name, "coordinator", c.url, "failures", c.failures, "err", err)
	if c.static || c.failures < attachFailureLimit {
		return
	}
	for i, cc := range w.coords {
		if cc == c {
			w.coords = append(w.coords[:i], w.coords[i+1:]...)
			w.cfg.Logger.Warn("cluster: coordinator detached",
				"worker", w.cfg.Name, "coordinator", c.url)
			break
		}
	}
}

// drainCoordinator pulls and runs leases from one coordinator until it has
// no pending range left.
func (w *Worker) drainCoordinator(ctx context.Context, base string) (int, error) {
	var list listResponse
	if err := w.getJSON(ctx, base+Prefix+"/sweeps", &list); err != nil {
		return 0, err
	}
	completed := 0
	for _, sw := range list.Sweeps {
		if sw.State != SweepRunning {
			continue
		}
		for {
			if err := ctx.Err(); err != nil {
				return completed, err
			}
			lease, ok, err := w.lease(ctx, base, sw.ID)
			if err != nil {
				return completed, err
			}
			if !ok {
				break
			}
			if err := w.runLease(ctx, base, lease); err != nil {
				return completed, err
			}
			completed++
		}
	}
	return completed, nil
}

// lease pulls the next range of a sweep; ok is false when nothing is
// pending (HTTP 204).
func (w *Worker) lease(ctx context.Context, base, sweepID string) (Lease, bool, error) {
	body, _ := json.Marshal(LeaseRequest{Worker: w.cfg.Name})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+Prefix+"/sweeps/"+sweepID+"/lease", bytes.NewReader(body))
	if err != nil {
		return Lease{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return Lease{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return Lease{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return Lease{}, false, httpError("lease", resp)
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return Lease{}, false, fmt.Errorf("decode lease: %w", err)
	}
	return lease, true, nil
}

// runLease executes a leased range on the local engine and pushes the
// verdicts. A 409 (stale token or already-done range) is not an error: the
// work was fenced off and the coordinator merged — or will merge — the
// current lease holder's identical verdicts.
func (w *Worker) runLease(ctx context.Context, base string, lease Lease) error {
	ps, err := w.parse(base, lease)
	if err != nil {
		return err
	}
	reports, err := experiments.RunSweepRange(ctx, ps.spec, ps.suite, experiments.SweepOptions{
		CheckEquivalence: lease.Options.CheckEquivalence,
		Workers:          w.cfg.Workers,
		Registry:         w.cfg.Registry,
	}, lease.Lo, lease.Hi)
	if err != nil {
		return err
	}
	body, err := json.Marshal(ReportRequest{
		Token: lease.Token, Worker: w.cfg.Name, Reports: EncodeReports(reports),
	})
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s%s/sweeps/%s/ranges/%d/result", base, Prefix, lease.Sweep, lease.Range)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		w.cfg.Registry.Counter("cfsmdiag_cluster_worker_ranges_total",
			"Ranges completed by this worker.").Inc()
		w.cfg.Registry.Counter("cfsmdiag_cluster_worker_mutants_total",
			"Mutants swept by this worker.").Add(int64(len(reports)))
		return nil
	case http.StatusConflict:
		// Fenced: our lease expired and the range was re-leased (stale), or
		// the replacement already finished (duplicate). Either way the
		// verdicts merge exactly once from whoever holds the token.
		w.cfg.Registry.Counter("cfsmdiag_cluster_worker_fenced_total",
			"Result pushes rejected by lease fencing.").Inc()
		w.cfg.Logger.Warn("cluster: result fenced",
			"worker", w.cfg.Name, "sweep", lease.Sweep, "range", lease.Range)
		return nil
	default:
		return httpError("result", resp)
	}
}

// parse decodes a lease's spec and suite, caching per (coordinator, sweep).
func (w *Worker) parse(base string, lease Lease) (*parsedSweep, error) {
	key := base + "\x00" + lease.Sweep
	w.mu.Lock()
	ps := w.specs[key]
	w.mu.Unlock()
	if ps != nil {
		return ps, nil
	}
	spec, err := cfsm.ParseSystem(lease.Spec)
	if err != nil {
		return nil, fmt.Errorf("lease spec: %w", err)
	}
	suite, err := DecodeCases(lease.Suite)
	if err != nil {
		return nil, fmt.Errorf("lease suite: %w", err)
	}
	ps = &parsedSweep{spec: spec, suite: suite}
	w.mu.Lock()
	w.specs[key] = ps
	w.mu.Unlock()
	return ps, nil
}

func (w *Worker) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("list", resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// httpError folds a non-2xx response (and its error envelope, if any) into
// an error value.
func httpError(op string, resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env api.ErrorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error.Message != "" {
		return fmt.Errorf("cluster %s: %s (%s): %s", op, resp.Status, env.Error.Code, env.Error.Message)
	}
	return fmt.Errorf("cluster %s: %s", op, resp.Status)
}

// attachRequest is the wire form of POST /v1/cluster/attach.
type attachRequest struct {
	Coordinator string `json:"coordinator"`
}

// AttachHandler serves POST /v1/cluster/attach: an ad-hoc coordinator (e.g.
// `cfsmdiag sweep -distributed -workers-urls=...` with its embedded
// coordinator) introduces itself to a running worker, which starts polling
// it for leases.
func (w *Worker) AttachHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			api.WriteError(rw, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
			return
		}
		var req attachRequest
		if err := decodeBody(rw, r, &req); err != nil {
			api.WriteError(rw, http.StatusBadRequest, api.CodeBadRequest, err)
			return
		}
		if req.Coordinator == "" {
			api.WriteError(rw, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Errorf("coordinator URL required"))
			return
		}
		w.Attach(req.Coordinator)
		api.WriteJSON(rw, http.StatusOK, map[string]any{
			"worker":       w.cfg.Name,
			"coordinators": w.Coordinators(),
		})
	})
}
