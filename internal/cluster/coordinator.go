package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/experiments"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/obs"
)

// Coordinator errors, mapped onto the HTTP envelope by the handler.
var (
	// ErrNotFound: no such sweep (or range index).
	ErrNotFound = errors.New("cluster: not found")
	// ErrNoWork: the sweep has no pending range right now (all leased or
	// done); workers back off and retry.
	ErrNoWork = errors.New("cluster: no pending range")
	// ErrStaleLease: the pushed fencing token is not the range's current
	// one — the lease expired and the range was re-leased. The push is
	// discarded; the current holder's result will be merged instead.
	ErrStaleLease = errors.New("cluster: stale lease token")
	// ErrDuplicate: the range is already done; the verdicts were merged
	// exactly once and this push is discarded.
	ErrDuplicate = errors.New("cluster: range already merged")
)

// Config tunes a Coordinator. The zero value works: 10s leases, ranges of
// 32 mutants, in-memory only, no telemetry.
type Config struct {
	// LeaseTTL is how long a granted range stays fenced to its worker before
	// it returns to the pending pool. <= 0 selects 10s.
	LeaseTTL time.Duration
	// RangeSize is the default shard width in mutant indices; sweep creation
	// may override it per sweep. <= 0 selects 32.
	RangeSize int
	// Dir enables durability: sweep creations and merged ranges append to a
	// JSONL journal replayed on Open, so a coordinator restart loses no
	// merged verdict and re-offers only unfinished ranges. Empty keeps
	// sweeps in memory only.
	Dir string
	// Registry receives cfsmdiag_cluster_* metrics; nil disables.
	Registry *obs.Registry
	// Logger receives operational notes; nil disables.
	Logger *obs.Logger

	// now overrides the clock in tests; nil selects time.Now.
	now func() time.Time
}

// sweepRange is one shard of a sweep's mutant space.
type sweepRange struct {
	lo, hi   int
	state    RangeState
	token    int64     // fencing token of the current (or last) lease
	deadline time.Time // lease expiry; meaningful while leased
	worker   string    // current/last lease holder
	leases   int       // grants including replays
	reports  []experiments.MutantReport
}

// sweep is one distributed mutant sweep.
type sweep struct {
	id        string
	createdAt time.Time
	state     SweepState
	spec      *cfsm.System
	specDoc   json.RawMessage // canonical document handed to workers
	suite     []cfsm.TestCase
	suiteWire []CaseJSON
	opts      Options
	rangeSize int
	mutants   int
	ranges    []*sweepRange
	done      int
	nextToken int64
	// fencing statistics, surfaced in the status document
	expirations int64
	stale       int64
	duplicates  int64
	result      *experiments.SweepResult // set when state == SweepDone
}

// Coordinator owns the sweeps, their range pools and the lease clock. All
// methods are safe for concurrent use.
type Coordinator struct {
	cfg Config
	met clusterMetrics

	mu     sync.Mutex
	sweeps map[string]*sweep
	order  []string // creation order for stable listing
	nextID int
	jl     *journal
}

// Open builds a Coordinator and, when cfg.Dir is set, replays the journal so
// previously created sweeps resume with their merged ranges intact.
func Open(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.RangeSize <= 0 {
		cfg.RangeSize = 32
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Coordinator{
		cfg:    cfg,
		met:    newClusterMetrics(cfg.Registry),
		sweeps: make(map[string]*sweep),
		nextID: 1,
	}
	if cfg.Dir != "" {
		jl, records, err := openJournal(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.jl = jl
		if err := c.replay(records); err != nil {
			jl.close()
			return nil, err
		}
	}
	return c, nil
}

// Close releases the journal handle; in-memory coordinators close instantly.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jl == nil {
		return nil
	}
	err := c.jl.close()
	c.jl = nil
	return err
}

// Create registers a sweep over the complete single-transition mutant space
// of spec, sharded into contiguous ranges of rangeSize mutants (<= 0 selects
// the coordinator default). The suite must be non-empty — resolve tours
// before calling in.
func (c *Coordinator) Create(spec *cfsm.System, suite []cfsm.TestCase, opts Options, rangeSize int) (SweepStatus, error) {
	if spec == nil {
		return SweepStatus{}, fmt.Errorf("cluster: nil spec")
	}
	if len(suite) == 0 {
		return SweepStatus{}, fmt.Errorf("cluster: empty suite")
	}
	doc, err := spec.MarshalJSON()
	if err != nil {
		return SweepStatus{}, err
	}
	mutants := len(fault.Enumerate(spec))
	if mutants == 0 {
		return SweepStatus{}, fmt.Errorf("cluster: the spec has no single-transition mutants to sweep")
	}
	if rangeSize <= 0 {
		rangeSize = c.cfg.RangeSize
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	sw := c.buildLocked(c.issueIDLocked(), c.cfg.now(), spec, doc, suite, EncodeCases(suite), opts, rangeSize, mutants)
	if c.jl != nil {
		if err := c.jl.append(journalRecord{
			Op: opCreate, Sweep: sw.id, At: sw.createdAt,
			Spec: doc, Suite: sw.suiteWire, Options: &sw.opts, RangeSize: rangeSize,
		}); err != nil {
			delete(c.sweeps, sw.id)
			c.order = c.order[:len(c.order)-1]
			return SweepStatus{}, err
		}
	}
	c.met.sweeps.Inc()
	c.met.active.Set(int64(c.activeLocked()))
	c.met.pending.Add(int64(len(sw.ranges)))
	c.cfg.Logger.Info("cluster: sweep created",
		"sweep", sw.id, "mutants", mutants, "ranges", len(sw.ranges), "range_size", rangeSize)
	return c.statusLocked(sw), nil
}

// buildLocked installs a sweep with every range pending.
func (c *Coordinator) buildLocked(id string, at time.Time, spec *cfsm.System, doc json.RawMessage, suite []cfsm.TestCase, suiteWire []CaseJSON, opts Options, rangeSize, mutants int) *sweep {
	sw := &sweep{
		id: id, createdAt: at, state: SweepRunning,
		spec: spec, specDoc: doc, suite: suite, suiteWire: suiteWire,
		opts: opts, rangeSize: rangeSize, mutants: mutants,
	}
	for lo := 0; lo < mutants; lo += rangeSize {
		hi := lo + rangeSize
		if hi > mutants {
			hi = mutants
		}
		sw.ranges = append(sw.ranges, &sweepRange{lo: lo, hi: hi, state: RangePending})
	}
	c.sweeps[id] = sw
	c.order = append(c.order, id)
	return sw
}

func (c *Coordinator) issueIDLocked() string {
	id := "s" + strconv.Itoa(c.nextID)
	c.nextID++
	return id
}

// activeLocked counts running sweeps.
func (c *Coordinator) activeLocked() int {
	n := 0
	for _, sw := range c.sweeps {
		if sw.state == SweepRunning {
			n++
		}
	}
	return n
}

// reclaimLocked returns expired leases to the pending pool. Called on every
// lease/report/status entry, so progress needs no background goroutine: the
// next worker poll after an expiry sees the range pending again.
func (c *Coordinator) reclaimLocked(sw *sweep, now time.Time) {
	for _, r := range sw.ranges {
		if r.state == RangeLeased && now.After(r.deadline) {
			r.state = RangePending
			sw.expirations++
			c.met.expired.Inc()
			c.met.pending.Inc()
			c.cfg.Logger.Warn("cluster: lease expired",
				"sweep", sw.id, "range", fmt.Sprintf("[%d,%d)", r.lo, r.hi), "worker", r.worker)
		}
	}
}

// Lease grants the lowest pending range of the sweep to a worker. ErrNoWork
// means nothing is pending right now — the sweep may be done, or every
// remaining range is leased out.
func (c *Coordinator) Lease(sweepID, worker string) (Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[sweepID]
	if !ok {
		return Lease{}, fmt.Errorf("%w: sweep %s", ErrNotFound, sweepID)
	}
	now := c.cfg.now()
	c.reclaimLocked(sw, now)
	for i, r := range sw.ranges {
		if r.state != RangePending {
			continue
		}
		sw.nextToken++
		r.state = RangeLeased
		r.token = sw.nextToken
		r.deadline = now.Add(c.cfg.LeaseTTL)
		r.worker = worker
		r.leases++
		c.met.leases.Inc()
		c.met.pending.Dec()
		return Lease{
			Sweep: sw.id, Range: i, Lo: r.lo, Hi: r.hi,
			Token: r.token, TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
			Spec: sw.specDoc, Suite: sw.suiteWire, Options: sw.opts,
		}, nil
	}
	return Lease{}, ErrNoWork
}

// Report merges one range's verdicts under lease fencing: the push is
// accepted iff the range is not yet done and token is the range's current
// fencing token. A push whose lease expired but whose range was not yet
// re-leased is still current — the work is valid and merging it beats
// redoing it. When the last range merges the sweep completes and the
// aggregate result is fixed.
func (c *Coordinator) Report(sweepID string, rangeIdx int, token int64, reports []experiments.MutantReport) (ReportResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[sweepID]
	if !ok {
		return ReportResponse{}, fmt.Errorf("%w: sweep %s", ErrNotFound, sweepID)
	}
	if rangeIdx < 0 || rangeIdx >= len(sw.ranges) {
		return ReportResponse{}, fmt.Errorf("%w: sweep %s has no range %d", ErrNotFound, sweepID, rangeIdx)
	}
	r := sw.ranges[rangeIdx]
	if r.state == RangeDone {
		sw.duplicates++
		c.met.reports("duplicate").Inc()
		return ReportResponse{}, fmt.Errorf("%w: sweep %s range %d", ErrDuplicate, sweepID, rangeIdx)
	}
	if token != r.token {
		sw.stale++
		c.met.reports("stale").Inc()
		return ReportResponse{}, fmt.Errorf("%w: sweep %s range %d (token %d, current %d)",
			ErrStaleLease, sweepID, rangeIdx, token, r.token)
	}
	if want := r.hi - r.lo; len(reports) != want {
		c.met.reports("invalid").Inc()
		return ReportResponse{}, fmt.Errorf("cluster: sweep %s range %d pushed %d reports, want %d",
			sweepID, rangeIdx, len(reports), want)
	}
	if c.jl != nil {
		if err := c.jl.append(journalRecord{
			Op: opResult, Sweep: sw.id, Range: rangeIdx, Reports: EncodeReports(reports),
		}); err != nil {
			return ReportResponse{}, err
		}
	}
	c.mergeRangeLocked(sw, r, reports)
	c.met.reports("merged").Inc()
	c.met.mutants.Add(int64(len(reports)))
	resp := ReportResponse{
		Merged: true, DoneRanges: sw.done, Ranges: len(sw.ranges),
		SweepDone: sw.state == SweepDone,
	}
	if resp.SweepDone {
		c.met.active.Set(int64(c.activeLocked()))
		c.cfg.Logger.Info("cluster: sweep complete",
			"sweep", sw.id, "mutants", sw.mutants, "ranges", len(sw.ranges),
			"expirations", sw.expirations, "stale", sw.stale, "duplicates", sw.duplicates)
	}
	return resp, nil
}

// mergeRangeLocked marks a range done and, when it is the last one, fixes
// the deterministic aggregate: ranges are concatenated in index order (==
// fault-enumeration order), so the merged SweepResult is byte-identical to
// the single-process sweep.
func (c *Coordinator) mergeRangeLocked(sw *sweep, r *sweepRange, reports []experiments.MutantReport) {
	if r.state == RangePending {
		// Late push after expiry but before re-lease: the pool count was
		// already incremented on reclaim.
		c.met.pending.Dec()
	}
	r.state = RangeDone
	r.reports = reports
	sw.done++
	if sw.done < len(sw.ranges) {
		return
	}
	var all []experiments.MutantReport
	for _, rr := range sw.ranges {
		all = append(all, rr.reports...)
	}
	res := experiments.MergeReports(sw.spec, sw.suite, all)
	sw.result = &res
	sw.state = SweepDone
}

// Get returns a sweep's status.
func (c *Coordinator) Get(sweepID string) (SweepStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[sweepID]
	if !ok {
		return SweepStatus{}, fmt.Errorf("%w: sweep %s", ErrNotFound, sweepID)
	}
	c.reclaimLocked(sw, c.cfg.now())
	return c.statusLocked(sw), nil
}

// Ranges returns a sweep's per-range statuses in range order.
func (c *Coordinator) Ranges(sweepID string) ([]RangeStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[sweepID]
	if !ok {
		return nil, fmt.Errorf("%w: sweep %s", ErrNotFound, sweepID)
	}
	c.reclaimLocked(sw, c.cfg.now())
	out := make([]RangeStatus, len(sw.ranges))
	for i, r := range sw.ranges {
		out[i] = RangeStatus{
			Range: i, Lo: r.lo, Hi: r.hi, State: r.state,
			Leases: r.leases, Worker: r.worker,
		}
	}
	return out, nil
}

// List returns every sweep's status in stable order: creation time, then id.
// The order never depends on map iteration.
func (c *Coordinator) List() []SweepStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	out := make([]SweepStatus, 0, len(c.order))
	for _, id := range c.order {
		sw := c.sweeps[id]
		c.reclaimLocked(sw, now)
		out = append(out, c.statusLocked(sw))
	}
	sort.SliceStable(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.Before(out[k].CreatedAt)
		}
		return idNumber(out[i].ID) < idNumber(out[k].ID)
	})
	return out
}

// Result returns the merged sweep result once every range is done.
func (c *Coordinator) Result(sweepID string) (*experiments.SweepResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[sweepID]
	if !ok || sw.result == nil {
		return nil, false
	}
	return sw.result, true
}

func (c *Coordinator) statusLocked(sw *sweep) SweepStatus {
	st := SweepStatus{
		ID: sw.id, State: sw.state, CreatedAt: sw.createdAt,
		Mutants: sw.mutants, RangeSize: sw.rangeSize, Ranges: len(sw.ranges),
		Expirations: sw.expirations, Stale: sw.stale, Duplicates: sw.duplicates,
		SuiteCases: len(sw.suite),
	}
	for _, r := range sw.ranges {
		switch r.state {
		case RangePending:
			st.Pending++
		case RangeLeased:
			st.Leased++
		case RangeDone:
			st.Done++
		}
	}
	if sw.result != nil {
		st.Result = summarize(sw.result)
	}
	return st
}

// summarize renders a merged result as the wire summary.
func summarize(res *experiments.SweepResult) *Summary {
	s := &Summary{
		Mutants:              len(res.Reports),
		Detected:             res.Detected,
		Outcomes:             make(map[string]int, len(res.Counts)),
		UndetectedEquivalent: res.UndetectedEquivalent,
		AdditionalTests:      res.TotalAdditionalTests,
		AdditionalInputs:     res.TotalAdditionalInputs,
		SuiteCases:           len(res.Suite),
	}
	for o, n := range res.Counts {
		s.Outcomes[o.String()] = n
	}
	return s
}

// idNumber extracts the numeric part of "s17"-style ids for stable sorting.
func idNumber(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "s"))
	return n
}

// replay rebuilds coordinator state from journal records: creations install
// sweeps with every range pending, results mark ranges done. Leases are
// deliberately volatile — after a restart every unfinished range is pending
// and will simply be re-leased.
func (c *Coordinator) replay(records []journalRecord) error {
	for _, rec := range records {
		switch rec.Op {
		case opCreate:
			spec, err := cfsm.ParseSystem(rec.Spec)
			if err != nil {
				return fmt.Errorf("cluster: journal sweep %s: %w", rec.Sweep, err)
			}
			suite, err := DecodeCases(rec.Suite)
			if err != nil {
				return fmt.Errorf("cluster: journal sweep %s: %w", rec.Sweep, err)
			}
			opts := Options{}
			if rec.Options != nil {
				opts = *rec.Options
			}
			mutants := len(fault.Enumerate(spec))
			c.buildLocked(rec.Sweep, rec.At, spec, rec.Spec, suite, rec.Suite, opts, rec.RangeSize, mutants)
			if n := idNumber(rec.Sweep); n >= c.nextID {
				c.nextID = n + 1
			}
		case opResult:
			sw, ok := c.sweeps[rec.Sweep]
			if !ok {
				continue // tolerate results for unknown sweeps (partial journal)
			}
			if rec.Range < 0 || rec.Range >= len(sw.ranges) {
				continue
			}
			r := sw.ranges[rec.Range]
			if r.state == RangeDone {
				continue // idempotent replay
			}
			c.mergeRangeLocked(sw, r, DecodeReports(rec.Reports))
		}
	}
	recovered := 0
	for _, sw := range c.sweeps {
		if sw.state == SweepRunning {
			recovered++
		}
	}
	if len(c.sweeps) > 0 {
		c.cfg.Logger.Info("cluster: journal replayed",
			"sweeps", len(c.sweeps), "running", recovered)
		c.met.active.Set(int64(c.activeLocked()))
	}
	return nil
}
