package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/server/api"
	"cfsmdiag/internal/testgen"
)

// Prefix is the route prefix the coordinator handler serves under.
const Prefix = "/v1/cluster"

// maxBodyBytes bounds request bodies on the standalone handler; the full
// server additionally applies its own global limit.
const maxBodyBytes = 16 << 20

// ResolveFunc resolves a model reference (CreateRequest.SpecRef) to a
// validated system — the server wires its model registry in here. A nil
// ResolveFunc rejects SpecRef creation.
type ResolveFunc func(ref string) (*cfsm.System, error)

// listResponse is the wire form of the sweep listing.
type listResponse struct {
	Sweeps []SweepStatus `json:"sweeps"`
	Total  int           `json:"total"`
}

// Handler serves the /v1/cluster API off the coordinator:
//
//	POST /v1/cluster/sweeps                        create a sweep
//	GET  /v1/cluster/sweeps?limit=&offset=         list sweeps (stable order)
//	GET  /v1/cluster/sweeps/{id}                   status (+ result when done)
//	GET  /v1/cluster/sweeps/{id}/ranges            per-range states
//	POST /v1/cluster/sweeps/{id}/lease             pull the next range lease
//	POST /v1/cluster/sweeps/{id}/ranges/{n}/result push a range's verdicts
//
// The handler is self-contained (mount it on any mux at Prefix) so worker
// and coordinator tests run without the full server.
func (c *Coordinator) Handler(resolve ResolveFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest, ok := strings.CutPrefix(r.URL.Path, Prefix+"/sweeps")
		if !ok {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound,
				fmt.Errorf("no route %s", r.URL.Path))
			return
		}
		parts := splitPath(rest)
		switch {
		case len(parts) == 0 && r.Method == http.MethodPost:
			c.handleCreate(w, r, resolve)
		case len(parts) == 0 && r.Method == http.MethodGet:
			c.handleList(w, r)
		case len(parts) == 1 && r.Method == http.MethodGet:
			c.handleGet(w, parts[0])
		case len(parts) == 2 && parts[1] == "lease" && r.Method == http.MethodPost:
			c.handleLease(w, r, parts[0])
		case len(parts) == 2 && parts[1] == "ranges" && r.Method == http.MethodGet:
			c.handleRanges(w, parts[0])
		case len(parts) == 4 && parts[1] == "ranges" && parts[3] == "result" && r.Method == http.MethodPost:
			c.handleReport(w, r, parts[0], parts[2])
		case len(parts) <= 1 || (len(parts) == 2 && (parts[1] == "lease" || parts[1] == "ranges")):
			api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
		default:
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound,
				fmt.Errorf("no route %s", r.URL.Path))
		}
	})
}

// splitPath splits "/a/b/c" into non-empty segments.
func splitPath(p string) []string {
	var out []string
	for _, seg := range strings.Split(p, "/") {
		if seg != "" {
			out = append(out, seg)
		}
	}
	return out
}

// decodeBody decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func (c *Coordinator) handleCreate(w http.ResponseWriter, r *http.Request, resolve ResolveFunc) {
	var req CreateRequest
	if err := decodeBody(w, r, &req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	var spec *cfsm.System
	var err error
	switch {
	case req.SpecRef != "" && resolve == nil:
		api.WriteError(w, http.StatusUnprocessableEntity, api.CodeUnsupportedModel,
			fmt.Errorf("specRef requires a model registry; inline the spec"))
		return
	case req.SpecRef != "":
		spec, err = resolve(req.SpecRef)
	default:
		spec, err = cfsm.FromJSON(req.Spec)
	}
	if err != nil {
		api.WriteError(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, err)
		return
	}
	suite, err := DecodeCases(req.Suite)
	if err != nil {
		api.WriteError(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, err)
		return
	}
	if len(suite) == 0 {
		suite, _ = testgen.Tour(spec, 0)
	}
	st, err := c.Create(spec, suite, Options{CheckEquivalence: req.CheckEquivalence}, req.RangeSize)
	if err != nil {
		api.WriteError(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, err)
		return
	}
	api.WriteJSON(w, http.StatusCreated, st)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	page, err := api.ParsePage(r, 100, 1000)
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	all := c.List()
	lo, hi := page.Window(len(all))
	api.WriteJSON(w, http.StatusOK, listResponse{Sweeps: all[lo:hi], Total: len(all)})
}

func (c *Coordinator) handleGet(w http.ResponseWriter, id string) {
	st, err := c.Get(id)
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleRanges(w http.ResponseWriter, id string) {
	ranges, err := c.Ranges(id)
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{"ranges": ranges})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request, id string) {
	var req LeaseRequest
	if r.ContentLength != 0 {
		if err := decodeBody(w, r, &req); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err)
			return
		}
	}
	lease, err := c.Lease(id, req.Worker)
	if errors.Is(err, ErrNoWork) {
		w.WriteHeader(http.StatusNoContent) // nothing pending; poll again later
		return
	}
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request, id, rangeSeg string) {
	rangeIdx, err := strconv.Atoi(rangeSeg)
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("invalid range index %q", rangeSeg))
		return
	}
	var req ReportRequest
	if err := decodeBody(w, r, &req); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	resp, err := c.Report(id, rangeIdx, req.Token, DecodeReports(req.Reports))
	if err != nil {
		writeClusterErr(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// writeClusterErr maps coordinator errors onto the HTTP envelope. Stale and
// duplicate pushes are conflicts, not failures: the worker logs and drops
// the range, because the verdicts are (or will be) merged from the lease
// currently holding the fencing token.
func writeClusterErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, err)
	case errors.Is(err, ErrStaleLease):
		api.WriteError(w, http.StatusConflict, api.CodeLeaseExpired, err)
	case errors.Is(err, ErrDuplicate):
		api.WriteError(w, http.StatusConflict, api.CodeConflict, err)
	default:
		api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, err)
	}
}
