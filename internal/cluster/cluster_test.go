package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/experiments"
	"cfsmdiag/internal/paper"
	"cfsmdiag/internal/randgen"
	"cfsmdiag/internal/testgen"
)

// localSweep runs the single-process reference sweep every distributed
// result must match byte for byte.
func localSweep(t *testing.T, spec *cfsm.System, suite []cfsm.TestCase) experiments.SweepResult {
	t.Helper()
	res, err := experiments.RunSweepContext(context.Background(), spec, suite, experiments.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkSameResult compares a distributed merge against the local reference.
func checkSameResult(t *testing.T, got *experiments.SweepResult, want experiments.SweepResult) {
	t.Helper()
	if got == nil {
		t.Fatal("no merged result")
	}
	if !reflect.DeepEqual(got.Reports, want.Reports) {
		t.Fatalf("distributed reports differ from local sweep:\n got %d reports\nwant %d reports", len(got.Reports), len(want.Reports))
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatalf("counts = %v, want %v", got.Counts, want.Counts)
	}
	if got.Detected != want.Detected || got.UndetectedEquivalent != want.UndetectedEquivalent ||
		got.TotalAdditionalTests != want.TotalAdditionalTests || got.TotalAdditionalInputs != want.TotalAdditionalInputs {
		t.Fatalf("aggregates differ: got %+v", got)
	}
}

// waitSweepDone polls the coordinator until the sweep completes.
func waitSweepDone(t *testing.T, c *Coordinator, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == SweepDone {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not complete in time")
	return SweepStatus{}
}

// TestDistributedMatchesLocal drives a full distributed sweep through the
// real HTTP surface with three concurrent workers and requires the merge to
// equal the single-process sweep exactly — on the paper system and on a
// generated one.
func TestDistributedMatchesLocal(t *testing.T) {
	systems := []struct {
		name  string
		spec  *cfsm.System
		suite []cfsm.TestCase
	}{
		{"figure1", paper.MustFigure1(), paper.TestSuite()},
	}
	gen := randgen.MustGenerate(randgen.DefaultConfig())
	genSuite, _ := testgen.Tour(gen, 0)
	systems = append(systems, struct {
		name  string
		spec  *cfsm.System
		suite []cfsm.TestCase
	}{"randgen", gen, genSuite})

	for _, sys := range systems {
		t.Run(sys.name, func(t *testing.T) {
			c, err := Open(Config{LeaseTTL: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			srv := httptest.NewServer(c.Handler(nil))
			defer srv.Close()

			st, err := c.Create(sys.spec, sys.suite, Options{}, 7)
			if err != nil {
				t.Fatal(err)
			}
			if st.Ranges < 2 {
				t.Fatalf("want multiple ranges, got %d", st.Ranges)
			}

			var workers []*Worker
			for i := 0; i < 3; i++ {
				w := NewWorker(WorkerConfig{
					Name:         "w" + string(rune('a'+i)),
					Coordinators: []string{srv.URL},
					PollInterval: 5 * time.Millisecond,
				})
				w.Start()
				workers = append(workers, w)
			}
			defer func() {
				for _, w := range workers {
					w.Stop()
				}
			}()

			final := waitSweepDone(t, c, st.ID)
			if final.Done != final.Ranges {
				t.Fatalf("done = %d, ranges = %d", final.Done, final.Ranges)
			}
			res, ok := c.Result(st.ID)
			if !ok {
				t.Fatal("no result")
			}
			checkSameResult(t, res, localSweep(t, sys.spec, sys.suite))
		})
	}
}

// TestLeaseExpiryReplay kills a worker mid-range (it leases and never
// reports), lets the lease expire, and requires: the range is re-leased
// exactly once, the dead worker's late push is fenced as stale, and the
// merged result is byte-identical to the local sweep — zero verdicts lost,
// zero duplicated.
func TestLeaseExpiryReplay(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()

	now := time.Unix(1000, 0)
	c, err := Open(Config{LeaseTTL: time.Second, now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Create(spec, suite, Options{}, 5)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes the first range and dies.
	doomed, err := c.Lease(st.ID, "doomed")
	if err != nil {
		t.Fatal(err)
	}

	// Its verdicts, computed before death, for the late push below.
	doomedReports, err := experiments.RunSweepRange(context.Background(), spec, suite,
		experiments.SweepOptions{Workers: 1}, doomed.Lo, doomed.Hi)
	if err != nil {
		t.Fatal(err)
	}

	// The lease expires; the next poll reclaims and re-leases the range.
	now = now.Add(2 * time.Second)
	replacement, err := c.Lease(st.ID, "survivor")
	if err != nil {
		t.Fatal(err)
	}
	if replacement.Lo != doomed.Lo || replacement.Hi != doomed.Hi {
		t.Fatalf("expected the expired range [%d,%d) to be re-leased first, got [%d,%d)",
			doomed.Lo, doomed.Hi, replacement.Lo, replacement.Hi)
	}
	if replacement.Token == doomed.Token {
		t.Fatal("re-lease must issue a fresh fencing token")
	}

	// The dead worker's late push is fenced off as stale.
	if _, err := c.Report(st.ID, doomed.Range, doomed.Token, doomedReports); err == nil {
		t.Fatal("stale push accepted")
	} else if !errorsIs(err, ErrStaleLease) {
		t.Fatalf("want ErrStaleLease, got %v", err)
	}

	// The survivor completes the replayed range and everything else.
	if _, err := c.Report(st.ID, replacement.Range, replacement.Token, doomedReports); err != nil {
		t.Fatal(err)
	}
	for {
		lease, err := c.Lease(st.ID, "survivor")
		if errorsIs(err, ErrNoWork) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		reports, err := experiments.RunSweepRange(context.Background(), spec, suite,
			experiments.SweepOptions{Workers: 1}, lease.Lo, lease.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Report(st.ID, lease.Range, lease.Token, reports); err != nil {
			t.Fatal(err)
		}
	}

	final, err := c.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepDone {
		t.Fatalf("state = %s, want done", final.State)
	}
	if final.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", final.Expirations)
	}
	if final.Stale != 1 {
		t.Fatalf("stale = %d, want 1", final.Stale)
	}
	ranges, err := c.Ranges(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ranges[doomed.Range].Leases != 2 {
		t.Fatalf("replayed range leased %d times, want exactly 2", ranges[doomed.Range].Leases)
	}
	res, _ := c.Result(st.ID)
	checkSameResult(t, res, localSweep(t, spec, suite))
}

// TestDuplicatePushRejected pushes a finished range a second time with its
// own (correct) token and requires the duplicate to be rejected — the range
// merges exactly once.
func TestDuplicatePushRejected(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Create(spec, suite, Options{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := c.Lease(st.ID, "w")
	if err != nil {
		t.Fatal(err)
	}
	reports, err := experiments.RunSweepRange(context.Background(), spec, suite,
		experiments.SweepOptions{Workers: 1}, lease.Lo, lease.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(st.ID, lease.Range, lease.Token, reports); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(st.ID, lease.Range, lease.Token, reports); !errorsIs(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	final, _ := c.Get(st.ID)
	if final.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", final.Duplicates)
	}
	res, _ := c.Result(st.ID)
	checkSameResult(t, res, localSweep(t, spec, suite))
}

// TestLatePushBeforeRelease covers the slow-but-alive worker: its lease
// expired (range back to pending) but nobody re-leased the range yet, so its
// token is still current and the push merges — the work is valid and
// merging beats redoing it.
func TestLatePushBeforeRelease(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	now := time.Unix(1000, 0)
	c, err := Open(Config{LeaseTTL: time.Second, now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Create(spec, suite, Options{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := c.Lease(st.ID, "slow")
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	if got, _ := c.Get(st.ID); got.Pending != 1 || got.Expirations != 1 {
		t.Fatalf("after expiry: %+v", got)
	}
	reports, err := experiments.RunSweepRange(context.Background(), spec, suite,
		experiments.SweepOptions{Workers: 1}, lease.Lo, lease.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(st.ID, lease.Range, lease.Token, reports); err != nil {
		t.Fatalf("late push before re-lease must merge, got %v", err)
	}
	res, _ := c.Result(st.ID)
	checkSameResult(t, res, localSweep(t, spec, suite))
}

// TestJournalRecovery restarts the coordinator mid-sweep and requires merged
// ranges to survive, leases to be forgotten (the unfinished ranges come back
// pending), and the completed sweep to match the local result. A torn tail
// line must not break recovery.
func TestJournalRecovery(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	dir := t.TempDir()

	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Create(spec, suite, Options{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Complete the first two ranges, lease (but never finish) a third.
	for i := 0; i < 2; i++ {
		lease, err := c.Lease(st.ID, "w")
		if err != nil {
			t.Fatal(err)
		}
		reports, err := experiments.RunSweepRange(context.Background(), spec, suite,
			experiments.SweepOptions{Workers: 1}, lease.Lo, lease.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Report(st.ID, lease.Range, lease.Token, reports); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Lease(st.ID, "about-to-die"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash artifact: a torn half-record at the journal tail.
	f, err := os.OpenFile(filepath.Join(dir, "cluster.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"result","sweep":"s1","ran`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Done != 2 {
		t.Fatalf("recovered done = %d, want 2", got.Done)
	}
	if got.Leased != 0 || got.Pending != got.Ranges-2 {
		t.Fatalf("leases must be volatile: %+v", got)
	}

	// A second created sweep must not collide with the recovered id.
	st2, err := c2.Create(spec, suite, Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("id collision after recovery: %s", st2.ID)
	}

	// Finish the recovered sweep and check the merge.
	for {
		lease, err := c2.Lease(st.ID, "w2")
		if errorsIs(err, ErrNoWork) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		reports, err := experiments.RunSweepRange(context.Background(), spec, suite,
			experiments.SweepOptions{Workers: 1}, lease.Lo, lease.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c2.Report(st.ID, lease.Range, lease.Token, reports); err != nil {
			t.Fatal(err)
		}
	}
	res, ok := c2.Result(st.ID)
	if !ok {
		t.Fatal("no result after recovery")
	}
	checkSameResult(t, res, localSweep(t, spec, suite))
}

// TestListStableOrder creates several sweeps and requires the listing to
// come back in creation order regardless of map iteration.
func TestListStableOrder(t *testing.T) {
	spec := paper.MustFigure1()
	suite := paper.TestSuite()
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var want []string
	for i := 0; i < 5; i++ {
		st, err := c.Create(spec, suite, Options{}, 50)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	for round := 0; round < 3; round++ {
		got := c.List()
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i, st := range got {
			if st.ID != want[i] {
				t.Fatalf("round %d: list[%d] = %s, want %s", round, i, st.ID, want[i])
			}
		}
	}
}

// TestHandlerRoutes exercises the HTTP surface edges: inline-spec creation,
// pagination, 404s, 405s and the no-work 204.
func TestHandlerRoutes(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler(nil))
	defer srv.Close()

	spec := paper.MustFigure1()
	doc, err := spec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var sj cfsm.SystemJSON
	if err := json.Unmarshal(doc, &sj); err != nil {
		t.Fatal(err)
	}

	// Create with an inline spec and no suite (tour default).
	body, _ := json.Marshal(CreateRequest{Spec: sj, RangeSize: 11})
	resp := postJSON(t, srv.URL+"/v1/cluster/sweeps", body)
	if resp.status != 201 {
		t.Fatalf("create: %d %s", resp.status, resp.body)
	}
	var st SweepStatus
	if err := json.Unmarshal(resp.body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mutants == 0 || st.SuiteCases == 0 {
		t.Fatalf("create status: %+v", st)
	}

	// List with pagination.
	var list listResponse
	getJSON(t, srv.URL+"/v1/cluster/sweeps?limit=1", &list)
	if list.Total != 1 || len(list.Sweeps) != 1 {
		t.Fatalf("list: %+v", list)
	}

	// Unknown sweep and bad routes.
	if r := getRaw(t, srv.URL+"/v1/cluster/sweeps/nope"); r.status != 404 {
		t.Fatalf("unknown sweep: %d", r.status)
	}
	if r := postJSON(t, srv.URL+"/v1/cluster/sweeps/"+st.ID+"/ranges/zzz/result", []byte(`{}`)); r.status != 400 {
		t.Fatalf("bad range index: %d", r.status)
	}
	if r := getRaw(t, srv.URL+"/v1/cluster/sweeps/"+st.ID+"/lease"); r.status != 405 {
		t.Fatalf("GET lease: %d", r.status)
	}

	// Drain all leases; the next pull must be a 204.
	for {
		r := postJSON(t, srv.URL+"/v1/cluster/sweeps/"+st.ID+"/lease", []byte(`{"worker":"t"}`))
		if r.status == 204 {
			break
		}
		if r.status != 200 {
			t.Fatalf("lease: %d %s", r.status, r.body)
		}
	}
}

// TestWorkerAttachDetach verifies runtime attachment and the failure-driven
// drop of attached (but not static) coordinators.
func TestWorkerAttachDetach(t *testing.T) {
	w := NewWorker(WorkerConfig{Name: "w", Coordinators: []string{"http://static.invalid"}})
	w.Attach("http://adhoc.invalid")
	if got := len(w.Coordinators()); got != 2 {
		t.Fatalf("coordinators = %d, want 2", got)
	}
	// Both endpoints fail every pass; only the attached one is dropped.
	for i := 0; i < attachFailureLimit+1; i++ {
		w.RunOnce(context.Background())
	}
	got := w.Coordinators()
	if len(got) != 1 || got[0] != "http://static.invalid" {
		t.Fatalf("after failures: %v", got)
	}
}

// --- small test helpers ---

type rawResponse struct {
	status int
	body   []byte
}

func postJSON(t *testing.T, url string, body []byte) rawResponse {
	t.Helper()
	resp, err := httpPost(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getRaw(t *testing.T, url string) rawResponse {
	t.Helper()
	resp, err := httpGet(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp := getRaw(t, url)
	if resp.status != 200 {
		t.Fatalf("GET %s: %d %s", url, resp.status, resp.body)
	}
	if err := json.Unmarshal(resp.body, v); err != nil {
		t.Fatal(err)
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

func httpPost(url string, body []byte) (rawResponse, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return rawResponse{}, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return rawResponse{status: resp.StatusCode, body: data}, nil
}

func httpGet(url string) (rawResponse, error) {
	resp, err := http.Get(url)
	if err != nil {
		return rawResponse{}, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return rawResponse{status: resp.StatusCode, body: data}, nil
}
