package cfsmdiag_test

import (
	"fmt"

	"cfsmdiag"
	"cfsmdiag/internal/paper"
)

// Example diagnoses the paper's Section 4 scenario through the public API:
// the Figure 1 specification, its two-test-case suite, and an implementation
// whose transition t"4 transfers to the wrong state.
func Example() {
	spec := paper.MustFigure1()
	iut, err := cfsmdiag.InjectFault(spec, cfsmdiag.Fault{
		Ref:  paper.FaultRef, // M3.t"4
		Kind: cfsmdiag.KindTransfer,
		To:   "s0",
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	result, err := cfsmdiag.Diagnose(spec, paper.TestSuite(), &cfsmdiag.SystemOracle{Sys: iut})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(result.Verdict)
	fmt.Println(result.Fault.Describe(spec))
	// Output:
	// fault localized
	// M3.t"4 transfers to s0 instead of s1
}

// ExampleNewSystem shows the model-building API: external-output transitions
// deliver to the machine's own port (DestEnv) and internal-output
// transitions to a peer machine's queue.
func ExampleNewSystem() {
	ping, _ := cfsmdiag.NewMachine("Ping", "p0",
		[]cfsmdiag.State{"p0"},
		[]cfsmdiag.Transition{
			{Name: "p1", From: "p0", Input: "go", Output: "ball", To: "p0", Dest: 1},
		})
	pong, _ := cfsmdiag.NewMachine("Pong", "q0",
		[]cfsmdiag.State{"q0"},
		[]cfsmdiag.Transition{
			{Name: "q1", From: "q0", Input: "ball", Output: "return", To: "q0", Dest: cfsmdiag.DestEnv},
		})
	sys, err := cfsmdiag.NewSystem(ping, pong)
	if err != nil {
		fmt.Println(err)
		return
	}
	obs, _ := sys.Run(cfsmdiag.TestCase{Inputs: []cfsmdiag.Input{
		cfsmdiag.Reset(),
		{Port: 0, Sym: "go"},
	}})
	fmt.Println(cfsmdiag.FormatObs(obs))
	// Output:
	// -, return^2
}

// ExampleGenerateTour generates a transition-covering test suite.
func ExampleGenerateTour() {
	spec := paper.MustFigure1()
	suite, uncovered := cfsmdiag.GenerateTour(spec, 0)
	fmt.Println(len(suite) > 0, len(uncovered))
	// Output:
	// true 0
}

// ExampleCheckAssumptions inspects a specification for properties that can
// weaken the diagnosis guarantees; the Figure 1 system is clean.
func ExampleCheckAssumptions() {
	warnings := cfsmdiag.CheckAssumptions(paper.MustFigure1())
	fmt.Println(len(warnings))
	// Output:
	// 0
}

// ExampleSuggestNextTests plans the additional diagnostic tests offline:
// the first planned test is the paper's own "R, c¹, b¹" for the unique
// symptom transition t7.
func ExampleSuggestNextTests() {
	spec := paper.MustFigure1()
	iut, _ := paper.FaultyImplementation()
	suite := paper.TestSuite()
	observed, _ := iut.RunSuite(suite)
	analysis, _ := cfsmdiag.Analyze(spec, suite, observed)
	planned := cfsmdiag.SuggestNextTests(analysis)
	fmt.Println(spec.RefString(planned[0].Target))
	fmt.Println(cfsmdiag.FormatInputs(planned[0].Test.Inputs))
	// Output:
	// M1.t7
	// R, c^1, b^1
}

// ExampleGenerateVerificationSuite builds a fault-model-complete suite: on
// the Figure 1 system it detects all 145 single-transition mutants.
func ExampleGenerateVerificationSuite() {
	suite, undetectable := cfsmdiag.GenerateVerificationSuite(paper.MustFigure1())
	fmt.Println(len(suite) > 0, len(undetectable))
	// Output:
	// true 0
}

// ExampleAnalyze runs only Steps 1–5 and inspects the diagnoses.
func ExampleAnalyze() {
	spec := paper.MustFigure1()
	iut, _ := paper.FaultyImplementation()
	suite := paper.TestSuite()
	observed, _ := iut.RunSuite(suite)
	analysis, _ := cfsmdiag.Analyze(spec, suite, observed)
	for _, d := range analysis.Diagnoses {
		fmt.Println(d.Describe(spec))
	}
	// Output:
	// M1.t7 outputs c' instead of d'
	// M3.t"4 transfers to s0 instead of s1
	// M3.t"5 outputs a instead of b
}
