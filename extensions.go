package cfsmdiag

import (
	"cfsmdiag/internal/async"
	"cfsmdiag/internal/cfsm"
	"cfsmdiag/internal/core"
	"cfsmdiag/internal/fault"
	"cfsmdiag/internal/multifault"
	"cfsmdiag/internal/report"
	"cfsmdiag/internal/testgen"
)

// This file exposes the extensions that go beyond the paper's algorithm:
// the fault-model-complete verification suite, the addressing-fault model
// (the paper's future work), the at-most-two-faults diagnosis, and the
// unsynchronized-ports (nondeterministic) diagnosis.

// KindAddress is the addressing-fault extension: the transition's output is
// delivered to the wrong destination (set Fault.Dest).
const KindAddress = fault.KindAddress

// GenerateVerificationSuite builds a fault-model-complete test suite: it
// detects every single-transition fault that is detectable at all. The
// second result lists the faults no test can reveal (mutants equivalent to
// the specification).
func GenerateVerificationSuite(sys *System) ([]TestCase, []Fault) {
	return testgen.VerificationSuite(sys)
}

// ConcatSystems combines independent systems into one larger system with
// prefixed machine names and namespaced alphabets; LiftTestCase translates a
// part's test cases into the combined system.
func ConcatSystems(parts map[string]*System) (*System, error) {
	return cfsm.Concat(parts)
}

// LiftTestCase translates a test case of one part into a concatenated
// system (ports shifted by partOffset, symbols prefixed).
func LiftTestCase(tc TestCase, prefix string, partOffset int) TestCase {
	return cfsm.LiftTestCase(tc, prefix, partOffset)
}

// MinimizeSuite greedily drops test cases that add no single-transition
// fault-detection power, preserving the suite's detection set exactly.
func MinimizeSuite(spec *System, suite []TestCase) ([]TestCase, error) {
	return testgen.MinimizeSuite(spec, suite)
}

// EnumerateAddressFaults returns every valid addressing fault of the
// specification (KindAddress extension).
func EnumerateAddressFaults(spec *System) []Fault {
	return fault.EnumerateAddress(spec)
}

// Warning flags a specification property that weakens the diagnosis
// guarantees (equivalent states, unreachable transitions, single-symbol
// output classes, missing strong connectivity).
type Warning = core.Warning

// CheckAssumptions inspects a specification for properties that weaken the
// guarantees of the diagnosis algorithm; the warnings are advisory.
func CheckAssumptions(spec *System) []Warning {
	return core.CheckAssumptions(spec)
}

// Localization options and observability.
type (
	// Option configures Localize/Diagnose behaviour.
	Option = core.Option
	// Tracer observes the adaptive localization as it runs.
	Tracer = core.Tracer
	// TextTracer narrates the localization to a writer.
	TextTracer = core.TextTracer
)

// WithMaxAdditionalTests bounds the number of additional diagnostic tests.
func WithMaxAdditionalTests(n int) Option { return core.WithMaxAdditionalTests(n) }

// WithTracer attaches a tracer to the localization.
func WithTracer(t Tracer) Option { return core.WithTracer(t) }

// WithoutCombinedEscalation restores the paper's literal flag heuristic.
func WithoutCombinedEscalation() Option { return core.WithoutCombinedEscalation() }

// WithoutAddressEscalation disables the addressing-fault hypothesis tier.
func WithoutAddressEscalation() Option { return core.WithoutAddressEscalation() }

// LocalizeWith is Localize with options (budget, tracer, escalation control).
func LocalizeWith(a *Analysis, oracle Oracle, opts ...Option) (*Localization, error) {
	return core.Localize(a, oracle, opts...)
}

// Offline diagnosis: plan the next diagnostic tests without an interactive
// oracle (observations arrive as recorded logs).
type (
	// PlannedTest is a proposed additional diagnostic test with
	// per-hypothesis predictions.
	PlannedTest = core.PlannedTest
	// Prediction is one hypothesis' expected outcome for a planned test.
	Prediction = core.Prediction
)

// SuggestNextTests plans the first additional diagnostic test for every
// testable candidate of the analysis, with the outputs each hypothesis
// predicts — the offline counterpart of Step 6.
func SuggestNextTests(a *Analysis) []PlannedTest {
	return core.SuggestNextTests(a)
}

// MarkdownReport renders a complete diagnosis session — verdict, test
// results, candidate walkthrough, additional tests, and a Mermaid sequence
// diagram of the convicting test — as a Markdown document.
func MarkdownReport(loc *Localization) (string, error) {
	return report.Markdown(loc)
}

// Multi-fault diagnosis (the "special classes of multiple faults" future
// work): at most two faulty transitions, each with one single-transition
// fault.
type (
	// MultiHypothesis is a set of one or two faults on distinct transitions.
	MultiHypothesis = multifault.Hypothesis
	// MultiOptions tunes the double-fault analysis.
	MultiOptions = multifault.Options
	// MultiLocalization is the double-fault diagnosis outcome.
	MultiLocalization = multifault.Localization
)

// DiagnoseMulti runs the at-most-two-faults diagnosis end to end.
func DiagnoseMulti(spec *System, suite []TestCase, oracle Oracle, opts MultiOptions) (*MultiLocalization, error) {
	return multifault.Diagnose(spec, suite, oracle, opts)
}

// Unsynchronized-ports diagnosis (the "non-deterministic behaviors" future
// work): local testers apply inputs independently and the interleaving is
// uncontrolled.
type (
	// Script is an unsynchronized test: one input sequence per port.
	Script = async.Script
	// Outcome is one observation of a script: one output stream per port.
	Outcome = async.Outcome
	// AsyncOracle executes scripts against the implementation under test.
	AsyncOracle = async.Oracle
	// RandomAsyncOracle resolves input races with a seeded scheduler.
	RandomAsyncOracle = async.RandomOracle
	// AsyncLocalization is the nondeterministic diagnosis outcome.
	AsyncLocalization = async.Localization
)

// PossibleOutcomes enumerates every outcome a system admits for a script,
// across all interleavings of the per-port input sequences.
func PossibleOutcomes(sys *System, script Script) (async.OutcomeSet, error) {
	set, _, err := async.Outcomes(sys, script)
	return set, err
}

// DiagnoseAsync runs the conservative nondeterministic diagnosis end to end.
func DiagnoseAsync(spec *System, scripts []Script, oracle AsyncOracle) (*AsyncLocalization, error) {
	return async.Diagnose(spec, scripts, oracle)
}
