module cfsmdiag

go 1.22
