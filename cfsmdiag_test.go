package cfsmdiag_test

import (
	"testing"

	"cfsmdiag"
	"cfsmdiag/internal/paper"
)

// TestFacadeEndToEnd drives the paper's scenario entirely through the public
// API: build the spec, inject the fault, generate a suite, diagnose.
func TestFacadeEndToEnd(t *testing.T) {
	spec := paper.MustFigure1()
	iut, err := cfsmdiag.InjectFault(spec, cfsmdiag.Fault{
		Ref:  paper.FaultRef,
		Kind: cfsmdiag.KindTransfer,
		To:   "s0",
	})
	if err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
	oracle := &cfsmdiag.SystemOracle{Sys: iut}
	result, err := cfsmdiag.Diagnose(spec, paper.TestSuite(), oracle)
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if result.Verdict != cfsmdiag.VerdictLocalized {
		t.Fatalf("verdict = %v", result.Verdict)
	}
	if result.Fault.Ref != paper.FaultRef || result.Fault.To != "s0" {
		t.Fatalf("fault = %+v", result.Fault)
	}
}

func TestFacadeBuildAndTour(t *testing.T) {
	a, err := cfsmdiag.NewMachine("A", "s0", []cfsmdiag.State{"s0", "s1"}, []cfsmdiag.Transition{
		{Name: "t1", From: "s0", Input: "x", Output: "y", To: "s1", Dest: cfsmdiag.DestEnv},
		{Name: "t2", From: "s1", Input: "x", Output: "z", To: "s0", Dest: cfsmdiag.DestEnv},
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	sys, err := cfsmdiag.NewSystem(a)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	suite, uncovered := cfsmdiag.GenerateTour(sys, 0)
	if len(uncovered) != 0 || len(suite) == 0 {
		t.Fatalf("tour: %v / %v", suite, uncovered)
	}
	faults := cfsmdiag.EnumerateFaults(sys)
	if len(faults) == 0 {
		t.Fatal("no faults enumerated")
	}
	data, err := sys.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	back, err := cfsmdiag.ParseSystem(data)
	if err != nil {
		t.Fatalf("ParseSystem: %v", err)
	}
	if back.N() != 1 {
		t.Fatalf("round trip lost machines")
	}
}

func TestFacadeAnalyzeLocalize(t *testing.T) {
	spec := paper.MustFigure1()
	iut, err := paper.FaultyImplementation()
	if err != nil {
		t.Fatalf("FaultyImplementation: %v", err)
	}
	suite := paper.TestSuite()
	observed, err := iut.RunSuite(suite)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	a, err := cfsmdiag.Analyze(spec, suite, observed)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.Diagnoses) != 3 {
		t.Fatalf("diagnoses = %d, want 3", len(a.Diagnoses))
	}
	loc, err := cfsmdiag.Localize(a, &cfsmdiag.SystemOracle{Sys: iut})
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if loc.Verdict != cfsmdiag.VerdictLocalized {
		t.Fatalf("verdict = %v", loc.Verdict)
	}
}

func TestFacadeFormatting(t *testing.T) {
	ins := []cfsmdiag.Input{cfsmdiag.Reset(), {Port: 0, Sym: "a"}}
	if got := cfsmdiag.FormatInputs(ins); got != "R, a^1" {
		t.Errorf("FormatInputs = %q", got)
	}
	obs := []cfsmdiag.Observation{{Sym: cfsmdiag.Null, Port: 0}}
	if got := cfsmdiag.FormatObs(obs); got != "-" {
		t.Errorf("FormatObs = %q", got)
	}
}
